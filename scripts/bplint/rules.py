"""The bplint rule catalog (BP001-BP011 + BP000 meta checks).

Each rule is a function over the Project (all analyzed files' facts)
that yields Diagnostic objects. Diagnostics are deduplicated and sorted
by the engine, so rules are free to emit in any order.

Since v2 the Project carries a call graph (callgraph.py), and the
reachability rules are interprocedural: BP002, BP005, and BP007 flag a
forbidden sink reached through ANY chain of project helpers, with the
witness chain spelled out in the diagnostic. The flow-sensitive family
BP008-BP011 targets the concurrency/error-handling bug classes this
repo has actually hit (see DESIGN.md section 15).

Rule catalog (see DESIGN.md sections 11 and 15 for the rationale):

  BP001  unordered-container iteration whose order escapes into wire
         encoding, digests, JSON/metrics export, or event scheduling.
  BP002  forbidden entropy/time sources outside src/sim and bench/
         (all randomness must flow from the seeded simulator RNG).
  BP003  wire-struct field coverage: every field of a struct in a
         `bplint:wire-coverage` header must appear in its Encode,
         Decode, and digest path (authentication material — Signature
         and QuorumCert fields — is digest-exempt: it attests the
         canonical bytes, so it cannot also be covered by them).
  BP004  message-type dispatch exhaustiveness: switches over
         *MessageType enums must be exhaustive or carry a default, and
         every enumerator must be dispatched somewhere in the project.
  BP005  no floating point in consensus/state-machine/digest paths
         (src/core, src/pbft, src/paxos, src/crypto, or files marked
         `bplint:consensus-path`).
  BP006  metrics/trace hygiene: every *Stats counter is registered
         with MetricsRegistry, every Tracer::Mark phase is in the
         kTracePhases catalog (and vice versa), and every
         CongestionGauge key is in the kCongestionGaugeKeys catalog
         (and vice versa).
  BP007  mutable static / un-mutexed namespace-scope state in files on
         a Runner prologue path (RunPrologue / SignBatch / VerifyBatch /
         VerifyDetached, or `bplint:runner-prologue-path`): prologues
         run on worker threads, so such state is a data race. v2 also
         grows the file set transitively: a file whose functions are
         reachable from a prologue-context lambda joins the scope.
  BP008  discarded Status/StatusOr results in src/: an unchecked error
         is a silent failure (the PR 2 transport-drop bug class).
  BP009  lock-scope discipline in code that uses lock_guard/unique_lock:
         callbacks, Send, or Drain must not be reachable — directly or
         through any call chain — while a lock scope is open (the PR 6
         RunBatch-nested-Drain deadlock class). Functions taking a
         unique_lock& parameter are analyzed entry-locked with their own
         unlock()/lock() toggles honored, so the unlock-before-invoke
         handoff idiom proves itself clean.
  BP010  timer hygiene in files that manage cancellable timers: every
         Schedule'd handle must reach a Cancel or a self-rearm (the
         PR 1 Simulator Cancel-leak class), and a discarded Schedule
         result that never re-arms can neither be cancelled nor
         re-armed at all.
  BP011  bounded decode: a wire-controlled count must be bounded by the
         decoder's remaining bytes before it flows into reserve/resize
         (the PR 3 DecodeBatch attacker-chosen-allocation class).
  BP000  linter hygiene: malformed or unused `bplint:allow` comments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from callgraph import CallGraph, Key, key_str, render_chain
from cppmodel import (CallSite, Enum, FileFacts, FunctionDef, Struct, Tok,
                      _NON_FN_IDS, _collect_worker_calls, _lambda_body_span,
                      match_balanced, match_template, schedule_sites)

RULE_DESCRIPTIONS = [
    ("BP001", "unordered-container iteration order escapes into an "
              "order-sensitive sink (wire encoding, digest, JSON/metrics "
              "export, event scheduling)"),
    ("BP002", "forbidden entropy/time source outside src/sim and bench/ "
              "(use the seeded simulator RNG / simulated clock)"),
    ("BP003", "wire-struct field missing from its Encode, Decode, or "
              "digest path (bplint:wire-coverage headers)"),
    ("BP004", "message-type enum dispatch is non-exhaustive or an "
              "enumerator is never dispatched"),
    ("BP005", "floating point in a consensus/state-machine/digest path"),
    ("BP006", "metrics counter not registered with MetricsRegistry, "
              "trace phase mark outside the kTracePhases catalog, or "
              "congestion gauge key outside kCongestionGaugeKeys"),
    ("BP007", "mutable static or un-mutexed namespace-scope state in a "
              "file on a Runner prologue path (worker threads may race "
              "on it)"),
    ("BP008", "Status/StatusOr result silently discarded in src/ "
              "(an unchecked error is a silent failure)"),
    ("BP009", "callback, Send, or Drain reachable — directly or through "
              "a call chain — while a lock_guard/unique_lock scope is "
              "open"),
    ("BP010", "Schedule'd timer handle never reaches a Cancel or a "
              "self-rearm (leaked or orphaned timer)"),
    ("BP011", "wire-controlled count flows into reserve/resize without "
              "a remaining-bytes bound (attacker-chosen allocation)"),
]

ALL_RULES = [r for r, _ in RULE_DESCRIPTIONS]


@dataclass(frozen=True, order=True)
class Diagnostic:
    path: str
    line: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.rule}: {self.message}"

    def __str__(self) -> str:
        return self.render()


class Project:
    """All analyzed files plus the cross-file indexes rules need."""

    def __init__(self, files: Sequence[FileFacts]):
        self.files = list(files)
        self.unordered_vars: Set[str] = set()
        self.string_literals: Set[str] = set()
        self.case_idents: Set[str] = set()
        self.cmp_idents: Set[str] = set()
        self.message_enums: List[Tuple[FileFacts, Enum]] = []
        self.enumerator_owner: Dict[str, Enum] = {}
        # (class, method) -> bodies, merged across files.
        self.methods: Dict[Tuple[str, str], List[List[Tok]]] = {}
        for f in self.files:
            self.unordered_vars |= f.unordered_vars
            self.string_literals |= f.string_literals
            self.case_idents |= f.case_idents
            self.cmp_idents |= f.cmp_idents
            for enum in f.enums:
                if enum.is_message_type:
                    self.message_enums.append((f, enum))
                    for name, _ in enum.enumerators:
                        self.enumerator_owner[name] = enum
            for key, bodies in f.out_of_line.items():
                self.methods.setdefault(key, []).extend(bodies)
            for struct in f.structs:
                for mname, bodies in struct.methods.items():
                    self.methods.setdefault((struct.name, mname),
                                            []).extend(bodies)

        # v2: the project-wide call graph and the indexes the
        # interprocedural rules consult.
        self.graph = CallGraph(self.files)
        self.cancel_args: Set[str] = set()
        self.prologue_roots: Set[str] = set()
        # A name is Status-returning only when every known signature
        # (definition or prototype) with that name agrees — a single
        # void/bool overload disqualifies it, so a statement-position
        # call can never be misflagged through an overload set.
        status_yes: Set[str] = set()
        status_no: Set[str] = set()
        for f in self.files:
            self.cancel_args |= f.cancel_args
            self.prologue_roots |= f.prologue_roots
            for fn in f.fn_defs:
                _note_status(status_yes, status_no, fn.name, fn.ret)
            for decl in f.fn_decls:
                _note_status(status_yes, status_no, decl.name, decl.ret)
        self.status_fns: Set[str] = status_yes - status_no

    def bodies_of(self, cls: str, names: Iterable[str]) -> List[List[Tok]]:
        out: List[List[Tok]] = []
        for name in names:
            out.extend(self.methods.get((cls, name), []))
        return out


def _note_status(yes: Set[str], no: Set[str], name: str, ret: str) -> None:
    parts = ret.split()
    if "Status" in parts or "StatusOr" in parts:
        yes.add(name)
    else:
        no.add(name)


def _fn_key(fn: FunctionDef) -> Key:
    return (fn.cls or "", fn.name)


def _chain_call_line(graph: CallGraph, fn: FunctionDef, nxt: Key) -> int:
    """The first call site in `fn` that resolves to `nxt` (chain hop 1)."""
    best = 0
    for call in fn.calls:
        if nxt in graph.resolve(fn, call) and (best == 0 or call.line < best):
            best = call.line
    return best or fn.line


# ---------------------------------------------------------------------------
# BP001
# ---------------------------------------------------------------------------

# Identifier prefixes/names whose reachability from an unordered loop
# means iteration order escaped into something order-sensitive.
_SINK_PREFIXES = ("Put", "Append", "Encode", "Sha256", "Digest")
_SINK_IDENTS = {
    "EncodeTo", "Update", "ToJson", "ToChromeTrace", "Json", "Schedule",
    "ScheduleAt", "Send", "SendTo", "SendShared", "Broadcast", "Increment",
    "write", "append", "ContentDigest",
}


def _first_sink(body: Sequence[Tok]) -> Tuple[str, int]:
    for t in body:
        if t.kind == "id":
            if t.text in _SINK_IDENTS or \
                    any(t.text.startswith(p) for p in _SINK_PREFIXES):
                return t.text, t.line
        elif t.kind == "punct" and t.text == "<<":
            return "<<", t.line
    return "", 0


def rule_bp001(project: Project) -> Iterable[Diagnostic]:
    for f in project.files:
        for it in f.iterations:
            if it.target not in project.unordered_vars:
                continue
            sink, _ = _first_sink(it.body)
            if not sink:
                continue
            yield Diagnostic(
                f.path, it.line, "BP001",
                f"iteration over unordered container '{it.target}' reaches "
                f"order-sensitive sink '{sink}'; iterate a sorted copy or "
                f"use an ordered container")


# ---------------------------------------------------------------------------
# BP002
# ---------------------------------------------------------------------------

_ENTROPY_IDENTS = {
    "random_device", "mt19937", "mt19937_64", "minstd_rand", "ranlux24",
    "default_random_engine", "system_clock", "steady_clock",
    "high_resolution_clock", "clock_gettime", "gettimeofday", "srand",
    "timespec_get", "getrandom", "arc4random",
}
# Flagged only in call position (bare or std::-qualified).
_ENTROPY_CALLS = {"rand", "time", "clock"}


def _bp002_exempt(path: str) -> bool:
    return path.startswith(("src/sim/", "bench/")) or "/sim/" in path


def rule_bp002(project: Project) -> Iterable[Diagnostic]:
    for f in project.files:
        if _bp002_exempt(f.path):
            continue
        toks = f.tokens
        n = len(toks)
        for i, t in enumerate(toks):
            if t.kind != "id":
                continue
            if t.text in _ENTROPY_IDENTS:
                yield Diagnostic(
                    f.path, t.line, "BP002",
                    f"forbidden entropy/time source '{t.text}'; all "
                    f"randomness and time must come from the seeded "
                    f"simulator (sim::Rng, Simulator::Now)")
                continue
            if t.text in _ENTROPY_CALLS and i + 1 < n and \
                    toks[i + 1].text == "(":
                prev = toks[i - 1].text if i > 0 else ""
                prev_kind = toks[i - 1].kind if i > 0 else ""
                if prev in (".", "->"):
                    continue  # a method named rand()/time() on some object
                if prev == "::" and (i < 2 or toks[i - 2].text != "std"):
                    continue  # qualified into some non-std namespace
                if prev_kind == "id" and prev not in (
                        "return", "co_return", "throw", "case", "else",
                        "do", "std"):
                    continue  # declaration `Type time(...)`, not a call
                yield Diagnostic(
                    f.path, t.line, "BP002",
                    f"forbidden entropy/time source '{t.text}()'; all "
                    f"randomness and time must come from the seeded "
                    f"simulator (sim::Rng, Simulator::Now)")

    # Interprocedural pass: a non-exempt function that reaches a direct
    # entropy user through any chain of project helpers is flagged at the
    # call site that starts the chain. Seeds live only in non-exempt
    # files — tainting the sim's own (sanctioned) RNG internals would
    # flag every legitimate sim::Rng call.
    seeds: Dict[Key, str] = {}
    for f in project.files:
        if _bp002_exempt(f.path):
            continue
        for fn in f.fn_defs:
            src = _bp002_entropy_in(fn.body)
            if src:
                seeds.setdefault(_fn_key(fn), src)
    if not seeds:
        return
    taint = project.graph.taint_toward(seeds)
    for f in project.files:
        if _bp002_exempt(f.path):
            continue
        for fn in f.fn_defs:
            hit = taint.get(_fn_key(fn))
            if hit is None:
                continue
            src, chain = hit
            if len(chain) < 2:
                continue  # the direct use above already flagged it
            yield Diagnostic(
                f.path, _chain_call_line(project.graph, fn, chain[1]),
                "BP002",
                f"call chain {render_chain(chain)} reaches forbidden "
                f"entropy/time source '{src}'; all randomness and time "
                f"must come from the seeded simulator")


def _bp002_entropy_in(body: Sequence[Tok]) -> str:
    """The first forbidden entropy token in `body`, '' when clean."""
    n = len(body)
    for i, t in enumerate(body):
        if t.kind != "id":
            continue
        if t.text in _ENTROPY_IDENTS:
            return t.text
        if t.text in _ENTROPY_CALLS and i + 1 < n and \
                body[i + 1].text == "(":
            prev = body[i - 1].text if i > 0 else ""
            prev_kind = body[i - 1].kind if i > 0 else ""
            if prev in (".", "->"):
                continue
            if prev == "::" and (i < 2 or body[i - 2].text != "std"):
                continue
            if prev_kind == "id" and prev not in (
                    "return", "co_return", "throw", "case", "else",
                    "do", "std"):
                continue
            return t.text + "()"
    return ""


# ---------------------------------------------------------------------------
# BP003
# ---------------------------------------------------------------------------

_ENCODE_FNS = ("Encode", "EncodeTo")
_DECODE_FNS = ("Decode", "DecodeFrom")
_DIGEST_FNS = ("CanonicalBody", "CanonicalHeader", "ContentDigest", "Digest")


def _closure_idents(project: Project, cls: str,
                    bodies: List[List[Tok]]) -> Set[str]:
    """Identifiers in `bodies`, expanded through same-struct helper calls."""
    idents: Set[str] = set()
    seen_methods: Set[str] = set()
    queue = list(bodies)
    while queue:
        body = queue.pop()
        for t in body:
            if t.kind != "id":
                continue
            idents.add(t.text)
            if t.text not in seen_methods and \
                    (cls, t.text) in project.methods:
                seen_methods.add(t.text)
                queue.extend(project.methods[(cls, t.text)])
    return idents


def rule_bp003(project: Project) -> Iterable[Diagnostic]:
    for f in project.files:
        if "wire-coverage" not in f.markers:
            continue
        for struct in f.structs:
            encode_bodies = project.bodies_of(struct.name, _ENCODE_FNS)
            if not encode_bodies:
                continue  # encoded inline by a parent message, if at all
            decode_bodies = project.bodies_of(struct.name, _DECODE_FNS)
            digest_bodies = project.bodies_of(struct.name, _DIGEST_FNS)
            encode_ids = _closure_idents(project, struct.name, encode_bodies)
            decode_ids = _closure_idents(project, struct.name, decode_bodies)
            digest_ids = _closure_idents(project, struct.name, digest_bodies)
            for fld in struct.fields:
                if fld.name not in encode_ids:
                    yield Diagnostic(
                        f.path, fld.line, "BP003",
                        f"field '{fld.name}' of {struct.name} is missing "
                        f"from its Encode path")
                if decode_bodies and fld.name not in decode_ids:
                    yield Diagnostic(
                        f.path, fld.line, "BP003",
                        f"field '{fld.name}' of {struct.name} is missing "
                        f"from its Decode path")
                # Authentication material is digest-exempt: signatures and
                # quorum certs attest the canonical bytes, so neither can be
                # covered by the digest they vouch for.
                if digest_bodies and "Signature" not in fld.type_str and \
                        "QuorumCert" not in fld.type_str and \
                        fld.name not in digest_ids:
                    yield Diagnostic(
                        f.path, fld.line, "BP003",
                        f"field '{fld.name}' of {struct.name} is missing "
                        f"from its digest/canonical path")


# ---------------------------------------------------------------------------
# BP004
# ---------------------------------------------------------------------------

def rule_bp004(project: Project) -> Iterable[Diagnostic]:
    # (a) per-switch exhaustiveness. MessageType is a plain uint32 on the
    # wire, so the compiler's -Wswitch-enum cannot check these switches;
    # bplint maps case labels back to their owning enum instead.
    for f in project.files:
        for sw in f.switches:
            owners: Dict[str, int] = {}
            for label, _, qualifier in sw.cases:
                enum = project.enumerator_owner.get(label)
                if enum is None:
                    continue
                if qualifier is not None and qualifier != enum.name:
                    continue  # `Other::kX` colliding with a message enum
                owners[enum.name] = owners.get(enum.name, 0) + 1
            if not owners:
                continue
            owner_name = sorted(owners.items(),
                                key=lambda kv: (-kv[1], kv[0]))[0][0]
            enum = next(e for _, e in project.message_enums
                        if e.name == owner_name)
            if sw.has_default:
                continue
            labels = {label for label, _, _ in sw.cases}
            missing = [name for name, _ in enum.enumerators
                       if name not in labels]
            if missing:
                yield Diagnostic(
                    f.path, sw.line, "BP004",
                    f"switch over {enum.name} is not exhaustive and has no "
                    f"default: missing {', '.join(missing)}")

    # (b) project-level: every message-type enumerator must be dispatched
    # (a case label or an ==/!= comparison) somewhere, or a freshly added
    # kGeoGapNotice-style type would be silently dropped by every handler.
    dispatched = project.case_idents | project.cmp_idents
    for f, enum in project.message_enums:
        for name, line in enum.enumerators:
            if name not in dispatched:
                yield Diagnostic(
                    f.path, line, "BP004",
                    f"message type {name} of {enum.name} is never "
                    f"dispatched by any handler switch or comparison")


# ---------------------------------------------------------------------------
# BP005
# ---------------------------------------------------------------------------

_FP_SCOPES = ("src/core/", "src/pbft/", "src/paxos/", "src/crypto/")
_FP_TOKENS = {"double", "float"}


def _bp005_in_scope(f: FileFacts) -> bool:
    return any(s in f.path for s in _FP_SCOPES) or \
        f.path.startswith(tuple(s.rstrip("/") for s in _FP_SCOPES)) or \
        "consensus-path" in f.markers


def rule_bp005(project: Project) -> Iterable[Diagnostic]:
    for f in project.files:
        if not _bp005_in_scope(f):
            continue
        for t in f.tokens:
            if t.kind == "id" and t.text in _FP_TOKENS:
                yield Diagnostic(
                    f.path, t.line, "BP005",
                    f"floating-point type '{t.text}' in a consensus/"
                    f"state-machine/digest path; use integer arithmetic "
                    f"(permille fractions, integer nanoseconds)")

    # Interprocedural pass: consensus code calling an out-of-scope helper
    # that computes in floating point has smuggled FP into the decision
    # path just as surely as writing `double` locally. Seeds are
    # FP-using functions defined outside the scope (in-scope ones are
    # already flagged token-by-token above). sim/bench helpers are not
    # seeds — they never run under consensus — and neither is src/net/:
    # the network fabric models physical delay (bandwidth, RTT, jitter)
    # in double by design, which is simulation environment, not
    # consensus math.
    seeds: Dict[Key, str] = {}
    for f in project.files:
        if _bp005_in_scope(f) or _bp002_exempt(f.path) or \
                f.path.startswith("src/net/"):
            continue
        for fn in f.fn_defs:
            for t in fn.body:
                if t.kind == "id" and t.text in _FP_TOKENS:
                    seeds.setdefault(_fn_key(fn), t.text)
                    break
    if not seeds:
        return
    taint = project.graph.taint_toward(seeds)
    for f in project.files:
        if not _bp005_in_scope(f):
            continue
        for fn in f.fn_defs:
            hit = taint.get(_fn_key(fn))
            if hit is None:
                continue
            src, chain = hit
            if len(chain) < 2:
                continue
            yield Diagnostic(
                f.path, _chain_call_line(project.graph, fn, chain[1]),
                "BP005",
                f"call chain {render_chain(chain)} reaches helper using "
                f"floating-point type '{src}' from a consensus/"
                f"state-machine/digest path; use integer arithmetic")


# ---------------------------------------------------------------------------
# BP006
# ---------------------------------------------------------------------------

def rule_bp006(project: Project) -> Iterable[Diagnostic]:
    # (a) every counter field of a *Stats struct (a struct with a Reset()
    # method) must be registered under its own name with MetricsRegistry —
    # i.e. the field name must appear as a string literal somewhere.
    for f in project.files:
        for struct in f.structs:
            if not struct.name.endswith("Stats"):
                continue
            if "Reset" not in struct.methods and \
                    (struct.name, "Reset") not in project.methods:
                continue
            for fld in struct.fields:
                if fld.name not in project.string_literals:
                    yield Diagnostic(
                        f.path, fld.line, "BP006",
                        f"counter '{fld.name}' of {struct.name} is not "
                        f"registered with MetricsRegistry (no "
                        f"\"{fld.name}\" snapshot key anywhere)")

    # (b) trace-phase hygiene against the kTracePhases catalog.
    catalog: List[str] = []
    catalog_file: FileFacts = None  # type: ignore[assignment]
    catalog_line = 0
    for f in project.files:
        if f.trace_catalog:
            catalog.extend(p for p in f.trace_catalog if p not in catalog)
            if catalog_file is None:
                catalog_file = f
                catalog_line = f.trace_catalog_line
    if catalog:
        used: Set[str] = set()
        for f in project.files:
            for call in f.mark_calls:
                used.add(call.phase)
                if call.phase not in catalog:
                    yield Diagnostic(
                        f.path, call.line, "BP006",
                        f"trace phase \"{call.phase}\" is not in the "
                        f"kTracePhases catalog; add it (in pipeline order) "
                        f"or fix the call site")
        for phase in catalog:
            if phase not in used:
                yield Diagnostic(
                    catalog_file.path, catalog_line, "BP006",
                    f"kTracePhases entry \"{phase}\" has no Mark() call "
                    f"site: a span opened earlier can never close on it "
                    f"(stale catalog or missing instrumentation)")

    # (c) congestion-gauge hygiene against the kCongestionGaugeKeys
    # catalog: a key outside the catalog is invisible to the adaptive-
    # window dashboards/benches keyed on it, and a catalog entry nothing
    # emits means a documented gauge silently reads as absent.
    gauge_catalog: List[str] = []
    gauge_file: FileFacts = None  # type: ignore[assignment]
    gauge_line = 0
    for f in project.files:
        if f.gauge_catalog:
            gauge_catalog.extend(k for k in f.gauge_catalog
                                 if k not in gauge_catalog)
            if gauge_file is None:
                gauge_file = f
                gauge_line = f.gauge_catalog_line
    if gauge_catalog:
        emitted: Set[str] = set()
        for f in project.files:
            for call in f.gauge_calls:
                emitted.add(call.key)
                if call.key not in gauge_catalog:
                    yield Diagnostic(
                        f.path, call.line, "BP006",
                        f"congestion gauge key \"{call.key}\" is not in "
                        f"the kCongestionGaugeKeys catalog; add it or fix "
                        f"the emission site")
        for key in gauge_catalog:
            if key not in emitted:
                yield Diagnostic(
                    gauge_file.path, gauge_line, "BP006",
                    f"kCongestionGaugeKeys entry \"{key}\" has no "
                    f"CongestionGauge emission: the documented gauge "
                    f"silently reads as absent (stale catalog or missing "
                    f"instrumentation)")


# ---------------------------------------------------------------------------
# BP007
# ---------------------------------------------------------------------------

# A file is "on a prologue path" when it mentions the Runner seam's entry
# points (its prologues run on ThreadPoolRunner workers) or carries the
# explicit marker. Everything else keeps the single-threaded-simulator
# freedom to use mutable statics.
_BP007_TRIGGERS = {"RunPrologue", "RunBatch", "SignBatch", "VerifyBatch",
                   "VerifyDetached", "SignDetached"}
# Qualifiers that make a static/global safe for concurrent prologues.
_BP007_IMMUTABLE = {"const", "constexpr", "constinit", "thread_local"}
# Types that synchronize themselves (or are synchronization primitives).
_BP007_SYNC = {"atomic", "atomic_flag", "atomic_bool", "atomic_int",
               "mutex", "shared_mutex", "recursive_mutex", "timed_mutex",
               "once_flag", "condition_variable", "condition_variable_any"}
_BP007_STMT_SKIP_HEADS = {
    "using", "typedef", "namespace", "template", "extern", "friend",
    "static", "static_assert", "struct", "class", "enum", "union",
    "return", "if", "for", "while", "switch", "case", "default", "do",
    "else", "break", "continue", "goto", "public", "private", "protected",
    "operator", "BP_DISALLOW_COPY_AND_ASSIGN",
}


def _bp007_in_scope(f: FileFacts) -> bool:
    if "runner-prologue-path" in f.markers:
        return True
    return any(t.kind == "id" and t.text in _BP007_TRIGGERS
               for t in f.tokens)


def _bp007_statics(f: FileFacts) -> Iterable[Diagnostic]:
    """Mutable `static` declarations (function-local or namespace-scope)."""
    toks = f.tokens
    n = len(toks)
    for i, t in enumerate(toks):
        if t.kind != "id" or t.text != "static":
            continue
        stmt: List[Tok] = []
        j = i + 1
        while j < n and toks[j].text not in (";", "{", "}") and \
                len(stmt) < 64:
            stmt.append(toks[j])
            j += 1
        if j >= n or toks[j].text != ";":
            continue  # `static Ret Fn() {...}` definition or truncated
        texts = {s.text for s in stmt}
        if texts & _BP007_IMMUTABLE or texts & _BP007_SYNC:
            continue
        if "(" in texts:
            continue  # function declaration or ctor-call initializer
        name = None
        for s in stmt:
            if s.text == "=":
                break
            if s.kind == "id":
                name = s.text
        if name is None:
            continue
        yield Diagnostic(
            f.path, t.line, "BP007",
            f"mutable static '{name}' in a file on a Runner prologue "
            f"path; worker threads may race on it — make it "
            f"const/constexpr/thread_local, synchronize it, or keep it "
            f"off prologue paths")


def _bp007_brace_kind(toks: Sequence[Tok], i: int) -> str:
    """Classifies the '{' at toks[i]: 'ns', 'type', or 'block'."""
    j = i - 1
    header: List[str] = []
    while j >= 0 and toks[j].text not in (";", "{", "}") and \
            len(header) < 32:
        header.append(toks[j].text)
        j -= 1
    if "namespace" in header:
        return "ns"
    if {"struct", "class", "union", "enum"} & set(header) and \
            "=" not in header:
        return "type"
    return "block"


def _bp007_globals(f: FileFacts) -> Iterable[Diagnostic]:
    """Initialized, un-synchronized variable definitions at namespace
    scope. Conservative: only statements with a top-level `=` whose first
    token is a type-ish identifier are considered, so expression
    statements and declarations the classifier cannot place degrade to
    silence."""
    toks = f.tokens
    n = len(toks)
    stack: List[str] = []
    stmt_start = 0
    i = 0
    while i < n:
        text = toks[i].text
        if text == "{":
            stack.append(_bp007_brace_kind(toks, i))
            stmt_start = i + 1
        elif text == "}":
            if stack:
                stack.pop()
            stmt_start = i + 1
        elif text == ";":
            if all(k == "ns" for k in stack):
                d = _bp007_global_stmt(f, toks[stmt_start:i])
                if d is not None:
                    yield d
            stmt_start = i + 1
        i += 1


def _bp007_global_stmt(f: FileFacts,
                       stmt: Sequence[Tok]) -> Optional[Diagnostic]:
    if not stmt or stmt[0].kind != "id":
        return None
    if stmt[0].text in _BP007_STMT_SKIP_HEADS:
        return None
    texts = {t.text for t in stmt}
    if texts & _BP007_IMMUTABLE or texts & _BP007_SYNC:
        return None
    name = None
    eq_idx = -1
    for idx, t in enumerate(stmt):
        if t.text == "=":
            eq_idx = idx
            break
        if t.text == "(":
            return None  # function decl / default argument
        if t.kind == "id":
            name = t.text
    if eq_idx < 0 or name is None:
        return None
    return Diagnostic(
        f.path, stmt[0].line, "BP007",
        f"un-mutexed namespace-scope variable '{name}' in a file on a "
        f"Runner prologue path; worker threads may race on it — make it "
        f"const/constexpr, synchronize it, or keep it off prologue paths")


def _factory_worker_calls(fn: FunctionDef) -> Set[str]:
    """Worker-side calls of a Prologue factory: the factory body itself
    runs on the submit thread, the lambda it `return`s is the prologue
    (worker code), and the nested lambda-after-return inside THAT is the
    epilogue (back on the submit thread, excluded again)."""
    out: Set[str] = set()
    body = fn.body
    n = len(body)
    i = 0
    prev_id = ""
    while i < n:
        t = body[i]
        if t.text == "[":
            span = _lambda_body_span(body, i)
            if span is not None:
                if prev_id == "return":
                    _collect_worker_calls(body, span[0], span[1], out)
                i = span[1] + 1
                prev_id = ""
                continue
        prev_id = t.text if t.kind == "id" else ""
        i += 1
    return out


def _bp007_transitive_paths(project: Project) -> Set[str]:
    """Files whose functions are reachable from a prologue-context
    lambda: their code runs on Runner worker threads even though the
    file itself never names the Runner seam, so they join the BP007
    scope (the v2 transitive growth)."""
    roots: List[Key] = []
    for name in sorted(project.prologue_roots):
        for key in project.graph.resolve_name(name):
            defs = project.graph.defs[key]
            if all("Prologue" in d.ret.split() for d in defs):
                # A factory constructing the prologue, not worker code:
                # closure only through its returned lambda's calls.
                names: Set[str] = set()
                for d in defs:
                    names |= _factory_worker_calls(d)
                for nm in sorted(names):
                    roots.extend(project.graph.resolve_name(nm))
            else:
                roots.append(key)
    paths: Set[str] = set()
    for key in project.graph.forward_closure(roots):
        for fn in project.graph.defs.get(key, ()):
            paths.add(fn.path)
    return paths


def rule_bp007(project: Project) -> Iterable[Diagnostic]:
    transitive = _bp007_transitive_paths(project)
    for f in project.files:
        if not _bp007_in_scope(f) and f.path not in transitive:
            continue
        yield from _bp007_statics(f)
        yield from _bp007_globals(f)


# ---------------------------------------------------------------------------
# BP008 — discarded Status/StatusOr
# ---------------------------------------------------------------------------

def rule_bp008(project: Project) -> Iterable[Diagnostic]:
    if not project.status_fns:
        return
    for f in project.files:
        if _bp002_exempt(f.path):
            continue  # sim/bench may fire-and-forget advisory calls
        for fn in f.fn_defs:
            yield from _bp008_fn(project, f, fn)


def _bp008_fn(project: Project, f: FileFacts,
              fn: FunctionDef) -> Iterable[Diagnostic]:
    body = fn.body
    n = len(body)
    for i, t in enumerate(body):
        if t.kind != "id" or t.text not in project.status_fns:
            continue
        if i + 1 >= n or body[i + 1].text != "(":
            continue
        end = match_balanced(body, i + 1)
        if end < n and body[end].text != ";":
            continue  # result consumed (.ok(), comparison, argument, ...)
        # Walk back over the receiver chain (`a->b().Decode(...)`) to the
        # start of the full expression; only a statement-position call
        # discards its Status. A preceding `)` (e.g. a `(void)` cast or
        # an if-condition) means the result was handled or routed.
        p = i - 1
        while p >= 0 and body[p].text in (".", "->", "::"):
            p -= 1
            if p >= 0 and body[p].text == ")":
                depth = 1
                p -= 1
                while p >= 0 and depth > 0:
                    if body[p].text == ")":
                        depth += 1
                    elif body[p].text == "(":
                        depth -= 1
                    p -= 1
            elif p >= 0 and body[p].kind == "id":
                p -= 1
        if p >= 0 and body[p].text not in (";", "{", "}"):
            continue
        yield Diagnostic(
            f.path, t.line, "BP008",
            f"result of '{t.text}' (returns Status/StatusOr) is "
            f"discarded; an unchecked error is a silent failure — check "
            f"it, BP_RETURN_NOT_OK it, or cast to (void) with a comment")


# ---------------------------------------------------------------------------
# BP009 — lock-scope discipline
# ---------------------------------------------------------------------------

# Invoking any of these (or a stored callback) while a lock is held can
# re-enter the runner/transport and deadlock — the PR 6 RunBatch
# nested-Drain class.
_BP009_SINKS = {"Send", "SendTo", "SendShared", "Broadcast", "Drain"}
_BP009_LOCK_TYPES = {"lock_guard", "unique_lock", "scoped_lock",
                     "shared_lock"}
# Types whose values are invokable callbacks in this codebase.
_BP009_CB_TYPES = {"Prologue", "Epilogue", "BatchTask", "Callback",
                   "function"}


def _bp009_cb_vars(fn: FunctionDef) -> Set[str]:
    """Names of parameters/locals declared with a callback type."""
    out: Set[str] = set()
    for toks in (fn.params, fn.body):
        n = len(toks)
        i = 0
        while i < n:
            t = toks[i]
            if t.kind == "id" and t.text in _BP009_CB_TYPES:
                j = i + 1
                if j < n and toks[j].text == "<":
                    j = match_template(toks, j)
                while j < n and toks[j].text in ("&", "*", "const"):
                    j += 1
                if j < n and toks[j].kind == "id" and \
                        (j + 1 >= n or toks[j + 1].text in
                         ("=", ";", ",", ")")):
                    out.add(toks[j].text)
                    i = j + 1
                    continue
            i += 1
    return out


def _bp009_direct_sink(fn: FunctionDef) -> Optional[str]:
    """The sink a CALLER's lock would cover: for ordinary functions any
    sink/callback invocation in the body (the caller's lock spans all of
    it); for unique_lock&-parameter functions only invocations while the
    handed-off lock is held (entry-locked, unlock()/lock() honored) —
    the unlock-before-invoke idiom proves itself clean. Lambda bodies
    are skipped: they run later, not under this lock."""
    cb = _bp009_cb_vars(fn)
    body = fn.body
    n = len(body)
    held = True
    i = 0
    while i < n:
        t = body[i]
        if t.text == "[":
            span = _lambda_body_span(body, i)
            if span is not None:
                i = span[1] + 1
                continue
        if fn.lock_param and t.kind == "id" and \
                t.text in ("unlock", "lock") and i >= 2 and \
                body[i - 1].text == "." and \
                body[i - 2].text == fn.lock_param and \
                i + 1 < n and body[i + 1].text == "(":
            held = (t.text == "lock")
            i = match_balanced(body, i + 1)
            continue
        if (held or not fn.lock_param) and t.kind == "id" and \
                i + 1 < n and body[i + 1].text == "(" and \
                (t.text in _BP009_SINKS or t.text in cb):
            return t.text
        i += 1
    return None


def rule_bp009(project: Project) -> Iterable[Diagnostic]:
    seeds: Dict[Key, str] = {}
    for f in project.files:
        for fn in f.fn_defs:
            sink = _bp009_direct_sink(fn)
            if sink:
                seeds.setdefault(_fn_key(fn), sink)
    taint = project.graph.taint_toward(seeds) if seeds else {}
    for f in project.files:
        for fn in f.fn_defs:
            yield from _bp009_fn(project, f, fn, taint)


def _bp009_fn(project: Project, f: FileFacts, fn: FunctionDef,
              taint: Dict[Key, Tuple[str, Tuple[Key, ...]]]
              ) -> Iterable[Diagnostic]:
    body = fn.body
    n = len(body)
    cb = _bp009_cb_vars(fn)
    # Active locks: [name, brace depth at declaration, currently held].
    locks: List[List] = []
    if fn.lock_param:
        locks.append([fn.lock_param, 0, True])
    if not locks and not any(
            t.kind == "id" and t.text in _BP009_LOCK_TYPES for t in body):
        return
    depth = 0
    i = 0
    while i < n:
        t = body[i]
        if t.text == "[":
            span = _lambda_body_span(body, i)
            if span is not None:
                i = span[1] + 1  # deferred execution: not under this lock
                continue
        if t.text == "{":
            depth += 1
            i += 1
            continue
        if t.text == "}":
            depth -= 1
            locks = [l for l in locks if l[1] <= depth]
            i += 1
            continue
        if t.kind == "id" and t.text in _BP009_LOCK_TYPES:
            j = i + 1
            if j < n and body[j].text == "<":
                j = match_template(body, j)
            if j + 1 < n and body[j].kind == "id" and \
                    body[j + 1].text in ("(", "{"):
                locks.append([body[j].text, depth, True])
                i = match_balanced(body, j + 1)
                continue
            i += 1
            continue
        if t.kind == "id" and t.text in ("unlock", "lock") and \
                i >= 2 and body[i - 1].text == "." and \
                body[i - 2].kind == "id" and \
                i + 1 < n and body[i + 1].text == "(":
            for lk in locks:
                if lk[0] == body[i - 2].text:
                    lk[2] = (t.text == "lock")
            i = match_balanced(body, i + 1)
            continue
        held = [lk for lk in locks if lk[2]]
        if held and t.kind == "id" and t.text not in _NON_FN_IDS and \
                i + 1 < n and body[i + 1].text == "(":
            lock_name = held[-1][0]
            if t.text in _BP009_SINKS:
                yield Diagnostic(
                    f.path, t.line, "BP009",
                    f"'{t.text}' called while lock '{lock_name}' is "
                    f"held; it can re-enter the runner/transport and "
                    f"deadlock — release the lock first")
            elif t.text in cb:
                yield Diagnostic(
                    f.path, t.line, "BP009",
                    f"callback '{t.text}' invoked while lock "
                    f"'{lock_name}' is held; callees may re-enter and "
                    f"deadlock — use the unlock-before-invoke idiom")
            else:
                d = _bp009_transitive_call(project, f, fn, body, i, held,
                                           taint)
                if d is not None:
                    yield d
        i += 1


def _bp009_transitive_call(project: Project, f: FileFacts, fn: FunctionDef,
                           body: Sequence[Tok], i: int, held: List[List],
                           taint: Dict[Key, Tuple[str, Tuple[Key, ...]]]
                           ) -> Optional[Diagnostic]:
    t = body[i]
    recv = qual = None
    if i >= 2 and body[i - 1].text == "::" and body[i - 2].kind == "id":
        qual = body[i - 2].text
    elif i >= 1 and body[i - 1].text in (".", "->"):
        recv = body[i - 2].text if i >= 2 and body[i - 2].kind == "id" \
            else "?"
    callees = project.graph.resolve(
        fn, CallSite(line=t.line, name=t.text, recv=recv, qual=qual))
    if not callees:
        return None
    end = match_balanced(body, i + 1)
    lock_names = {lk[0] for lk in held}
    passes_lock = any(a.kind == "id" and a.text in lock_names
                      for a in body[i + 2:end - 1])
    for key in callees:
        defs = project.graph.defs.get(key, [])
        if passes_lock and defs and all(d.lock_param for d in defs):
            # Lock handoff: the callee owns the unlock/relock protocol
            # and is analyzed entry-locked on its own.
            continue
        hit = taint.get(key)
        if hit is not None:
            sink, chain = hit
            return Diagnostic(
                f.path, t.line, "BP009",
                f"call chain {render_chain(chain)} reaches '{sink}' "
                f"while lock '{held[-1][0]}' is held; it can re-enter "
                f"and deadlock — release the lock first")
    return None


# ---------------------------------------------------------------------------
# BP010 — timer hygiene
# ---------------------------------------------------------------------------

def rule_bp010(project: Project) -> Iterable[Diagnostic]:
    graph = project.graph
    for f in project.files:
        # Only files that manage cancellable timers are in scope: a file
        # with Schedule but no Cancel anywhere is fire-and-forget by
        # design (network delivery events), and the sim owns the wheel.
        # Test code is exempt too — each test owns a simulator it tears
        # down at function end, and exercising Schedule without Cancel
        # is exactly what timer tests do.
        if _bp002_exempt(f.path) or f.path.startswith("tests/") or \
                not f.cancel_args:
            continue
        for fn in f.fn_defs:
            fkey = _fn_key(fn)
            for site in schedule_sites(fn.body):
                if not site.discarded and site.handle is None:
                    continue  # result escapes to the caller: their duty
                if _bp010_rearms(graph, fkey, fn.name, site):
                    continue
                if site.handle is not None:
                    if site.handle in project.cancel_args:
                        continue
                    yield Diagnostic(
                        f.path, site.line, "BP010",
                        f"timer handle '{site.handle}' from Schedule "
                        f"never reaches a Cancel and the callback never "
                        f"re-arms; a stale timer will fire into "
                        f"torn-down state")
                else:
                    yield Diagnostic(
                        f.path, site.line, "BP010",
                        f"Schedule result discarded and the callback "
                        f"never re-arms; the timer can neither be "
                        f"cancelled nor re-armed")


def _bp010_rearms(graph: CallGraph, fkey: Key, fname: str,
                  site) -> bool:
    """True when the scheduled lambda re-arms: it re-assigns the handle
    or calls something from which the scheduling function is reachable
    (the recursive-rearm idiom)."""
    if site.handle is not None and site.handle in site.lambda_assigns:
        return True
    for g in sorted(site.lambda_calls):
        if g == fname:
            return True
        for gk in graph.resolve_name(g):
            if fkey in graph.forward_closure([gk]):
                return True
    return False


# ---------------------------------------------------------------------------
# BP011 — bounded decode
# ---------------------------------------------------------------------------

_BP011_GETS = {"GetU8", "GetU16", "GetU32", "GetU64", "GetI64",
               "GetVarint", "GetVarint32", "GetVarint64"}
_BP011_REMAINING = {"remaining", "Remaining", "remaining_"}
_BP011_SINKS = {"reserve", "resize"}


def rule_bp011(project: Project) -> Iterable[Diagnostic]:
    for f in project.files:
        if _bp002_exempt(f.path):
            continue  # the sim decodes nothing wire-controlled
        for fn in f.fn_defs:
            yield from _bp011_fn(f, fn)


def _bp011_fn(f: FileFacts, fn: FunctionDef) -> Iterable[Diagnostic]:
    body = fn.body
    n = len(body)
    # Pass 1: wire-controlled counts (decoded straight off the wire).
    wire: Set[str] = set()
    for i, t in enumerate(body):
        if t.kind == "id" and t.text in _BP011_GETS and i + 3 < n and \
                body[i + 1].text == "(" and body[i + 2].text == "&" and \
                body[i + 3].kind == "id":
            wire.add(body[i + 3].text)
    if not wire:
        return
    # Pass 2: an if/while condition mentioning both the count and the
    # decoder's remaining bytes bounds it. A constant cap (`n > 4096`)
    # does NOT: it still lets a 20-byte message demand a 4096-element
    # allocation.
    guarded: Set[str] = set()
    for i, t in enumerate(body):
        if t.kind == "id" and t.text in ("if", "while") and i + 1 < n and \
                body[i + 1].text == "(":
            end = match_balanced(body, i + 1)
            idents = {c.text for c in body[i + 2:end - 1]
                      if c.kind == "id"}
            if idents & _BP011_REMAINING:
                guarded |= idents & wire
    # Pass 3: unbounded counts flowing into an allocation sink.
    flagged: Set[str] = set()
    for i, t in enumerate(body):
        if t.kind == "id" and t.text in _BP011_SINKS and i + 1 < n and \
                body[i + 1].text == "(":
            end = match_balanced(body, i + 1)
            for a in body[i + 2:end - 1]:
                if a.kind == "id" and a.text in wire and \
                        a.text not in guarded and a.text not in flagged:
                    flagged.add(a.text)
                    yield Diagnostic(
                        f.path, t.line, "BP011",
                        f"wire-controlled count '{a.text}' flows into "
                        f"'{t.text}' without a remaining-bytes bound; "
                        f"a short message can demand an arbitrary "
                        f"allocation — check it against "
                        f"decoder.remaining() first")


RULE_FNS = {
    "BP001": rule_bp001,
    "BP002": rule_bp002,
    "BP003": rule_bp003,
    "BP004": rule_bp004,
    "BP005": rule_bp005,
    "BP006": rule_bp006,
    "BP007": rule_bp007,
    "BP008": rule_bp008,
    "BP009": rule_bp009,
    "BP010": rule_bp010,
    "BP011": rule_bp011,
}
