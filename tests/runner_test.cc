// Tests for the ordered parallel-runtime seam (DESIGN.md §12): the
// InlineRunner/ThreadPoolRunner contract (strictly ordered epilogue
// retirement, backpressure, reentrant submission), the batched
// crypto/codec offload built on top of it, and inline-vs-threaded
// equivalence of a full deployment scenario.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/runner.h"
#include "core/deployment.h"
#include "core/wire.h"
#include "crypto/signer.h"
#include "sim/simulator.h"

namespace blockplane {
namespace {

using common::InlineRunner;
using common::Runner;
using common::ThreadPoolRunner;

// ---------------------------------------------------------------------------
// InlineRunner
// ---------------------------------------------------------------------------

TEST(InlineRunnerTest, RunsPrologueAndEpilogueSynchronously) {
  InlineRunner runner;
  runner_stats().Reset();
  std::vector<int> order;
  for (int i = 0; i < 4; ++i) {
    runner.RunPrologue([&order, i]() -> Runner::Epilogue {
      order.push_back(i * 2);  // prologue
      return [&order, i] { order.push_back(i * 2 + 1); };  // epilogue
    });
  }
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
  EXPECT_EQ(runner_stats().prologues_submitted, 4);
  EXPECT_EQ(runner_stats().epilogues_retired, 4);
  EXPECT_EQ(runner.Poll(), 0u);
  runner.Drain();  // no-op
  EXPECT_TRUE(runner.serial());
}

TEST(InlineRunnerTest, NullEpilogueCountsAsDropped) {
  InlineRunner runner;
  runner_stats().Reset();
  runner.RunPrologue([]() -> Runner::Epilogue { return nullptr; });
  EXPECT_EQ(runner_stats().prologues_dropped, 1);
  EXPECT_EQ(runner_stats().epilogues_retired, 1);
}

TEST(InlineRunnerTest, DefaultRunnerIsSerial) {
  ASSERT_NE(common::DefaultRunner(), nullptr);
  EXPECT_TRUE(common::DefaultRunner()->serial());
}

// ---------------------------------------------------------------------------
// ThreadPoolRunner ordering
// ---------------------------------------------------------------------------

/// Retirement must follow submission order even when workers finish out of
/// order. Each prologue sleeps a pseudo-random amount (LCG-derived, so the
/// test is reproducible) to shuffle completion order aggressively.
TEST(ThreadPoolRunnerTest, OrderedRetirementUnderRandomizedLatency) {
  for (bool spin : {false, true}) {
    ThreadPoolRunner runner({/*workers=*/4, /*queue_capacity=*/64, spin});
    EXPECT_FALSE(runner.serial());
    constexpr int kTasks = 200;
    std::vector<int> retired;
    uint64_t lcg = 0x2545F4914F6CDD1Dull;
    for (int i = 0; i < kTasks; ++i) {
      lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
      int delay_us = static_cast<int>((lcg >> 33) % 50);
      runner.RunPrologue([&retired, i, delay_us]() -> Runner::Epilogue {
        std::this_thread::sleep_for(std::chrono::microseconds(delay_us));
        return [&retired, i] { retired.push_back(i); };
      });
    }
    runner.Drain();
    ASSERT_EQ(retired.size(), static_cast<size_t>(kTasks))
        << "spin=" << spin;
    for (int i = 0; i < kTasks; ++i) {
      EXPECT_EQ(retired[i], i) << "out-of-order retirement, spin=" << spin;
    }
  }
}

TEST(ThreadPoolRunnerTest, PollRetiresOnlyCompletedPrefix) {
  ThreadPoolRunner runner({/*workers=*/2, /*queue_capacity=*/16, false});
  std::atomic<bool> release{false};
  std::vector<int> retired;
  // Task 0 blocks until released; tasks 1..3 finish immediately. Poll must
  // retire nothing while the front is in flight.
  runner.RunPrologue([&release]() -> Runner::Epilogue {
    while (!release.load()) std::this_thread::yield();
    return [] {};
  });
  for (int i = 1; i < 4; ++i) {
    runner.RunPrologue([&retired, i]() -> Runner::Epilogue {
      return [&retired, i] { retired.push_back(i); };
    });
  }
  EXPECT_EQ(runner.Poll(), 0u);
  EXPECT_TRUE(retired.empty());
  release.store(true);
  runner.Drain();
  EXPECT_EQ(retired, (std::vector<int>{1, 2, 3}));
}

/// A full queue must block the submitter (counting backpressure_waits)
/// and resolve by retiring the front — never by dropping or reordering.
TEST(ThreadPoolRunnerTest, BackpressureBlocksAndPreservesOrder) {
  runner_stats().Reset();
  std::vector<int> retired;
  {
    ThreadPoolRunner runner({/*workers=*/1, /*queue_capacity=*/2, false});
    constexpr int kTasks = 8;
    for (int i = 0; i < kTasks; ++i) {
      runner.RunPrologue([&retired, i]() -> Runner::Epilogue {
        // Slow worker + tiny queue: submissions outpace completions, so
        // later RunPrologue calls must hit the backpressure path.
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
        return [&retired, i] { retired.push_back(i); };
      });
    }
    runner.Drain();
  }
  ASSERT_EQ(retired.size(), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(retired[i], i);
  EXPECT_GE(runner_stats().backpressure_waits, 1);
  EXPECT_EQ(runner_stats().prologues_submitted, 8);
  EXPECT_EQ(runner_stats().epilogues_retired, 8);
  EXPECT_LE(runner_stats().queue_depth_peak, 2 + 1);  // +1: reentrant slack
}

/// Epilogues may submit new work (the comm daemon's verify stage does).
/// The nested submission must neither deadlock on backpressure nor retire
/// ahead of its elders.
TEST(ThreadPoolRunnerTest, ReentrantSubmissionFromEpilogue) {
  ThreadPoolRunner runner({/*workers=*/2, /*queue_capacity=*/1, false});
  std::vector<std::string> retired;
  for (int i = 0; i < 3; ++i) {
    runner.RunPrologue([&runner, &retired, i]() -> Runner::Epilogue {
      return [&runner, &retired, i] {
        retired.push_back("outer" + std::to_string(i));
        runner.RunPrologue([&retired, i]() -> Runner::Epilogue {
          return [&retired, i] {
            retired.push_back("nested" + std::to_string(i));
          };
        });
      };
    });
  }
  runner.Drain();
  ASSERT_EQ(retired.size(), 6u);
  // Every outer epilogue precedes its own nested one, and outer order is
  // submission order.
  std::vector<std::string> outers;
  for (const auto& s : retired) {
    if (s.rfind("outer", 0) == 0) outers.push_back(s);
  }
  EXPECT_EQ(outers, (std::vector<std::string>{"outer0", "outer1", "outer2"}));
  for (int i = 0; i < 3; ++i) {
    auto outer = std::find(retired.begin(), retired.end(),
                           "outer" + std::to_string(i));
    auto nested = std::find(retired.begin(), retired.end(),
                            "nested" + std::to_string(i));
    EXPECT_LT(outer, nested);
  }
}

TEST(ThreadPoolRunnerTest, DrainIsReusable) {
  ThreadPoolRunner runner({/*workers=*/2, /*queue_capacity=*/8, false});
  int count = 0;
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 5; ++i) {
      runner.RunPrologue([&count]() -> Runner::Epilogue {
        return [&count] { ++count; };
      });
    }
    runner.Drain();
    EXPECT_EQ(count, (round + 1) * 5);
  }
}

// ---------------------------------------------------------------------------
// Batched crypto/codec equivalence: threaded == inline, bit for bit
// ---------------------------------------------------------------------------

std::vector<Bytes> TestMessages(int n) {
  std::vector<Bytes> msgs;
  for (int i = 0; i < n; ++i) {
    msgs.push_back(Bytes(32 + (i % 64), static_cast<uint8_t>(i * 37 + 1)));
  }
  return msgs;
}

TEST(BatchCryptoTest, SignBatchMatchesSerialSigning) {
  crypto::KeyStore keys;
  auto signer = keys.RegisterNode({2, 1});
  std::vector<Bytes> msgs = TestMessages(41);

  std::vector<crypto::SignJob> inline_jobs;
  std::vector<crypto::SignJob> threaded_jobs;
  for (const Bytes& m : msgs) {
    inline_jobs.push_back({m});
    threaded_jobs.push_back({m});
  }
  InlineRunner inline_runner;
  signer->SignBatch(&inline_jobs, &inline_runner);
  ThreadPoolRunner pool({/*workers=*/4, /*queue_capacity=*/16, false});
  signer->SignBatch(&threaded_jobs, &pool);

  for (size_t i = 0; i < msgs.size(); ++i) {
    EXPECT_EQ(inline_jobs[i].sig.signer, threaded_jobs[i].sig.signer);
    EXPECT_EQ(inline_jobs[i].sig.mac, threaded_jobs[i].sig.mac);
    EXPECT_EQ(inline_jobs[i].sig.mac, signer->Sign(msgs[i]).mac);
  }
}

TEST(BatchCryptoTest, VerifyBatchMatchesSerialVerification) {
  crypto::KeyStore keys;
  auto signer = keys.RegisterNode({1, 0});
  std::vector<Bytes> msgs = TestMessages(37);

  std::vector<crypto::VerifyJob> inline_jobs;
  std::vector<crypto::VerifyJob> threaded_jobs;
  for (size_t i = 0; i < msgs.size(); ++i) {
    crypto::Signature sig = signer->Sign(msgs[i]);
    if (i % 5 == 0) sig.mac[0] ^= 0xFF;  // corrupt every 5th
    inline_jobs.push_back({msgs[i], sig});
    threaded_jobs.push_back({msgs[i], sig});
  }
  InlineRunner inline_runner;
  keys.VerifyBatch(&inline_jobs, &inline_runner);
  ThreadPoolRunner pool({/*workers=*/4, /*queue_capacity=*/16, false});
  keys.VerifyBatch(&threaded_jobs, &pool);

  for (size_t i = 0; i < msgs.size(); ++i) {
    EXPECT_EQ(inline_jobs[i].ok, i % 5 != 0) << i;
    EXPECT_EQ(inline_jobs[i].ok, threaded_jobs[i].ok) << i;
  }
}

TEST(BatchCodecTest, EncodeDecodeBatchRoundTripsThreaded) {
  std::vector<core::TransmissionRecord> records;
  for (int i = 0; i < 29; ++i) {
    core::TransmissionRecord tr;
    tr.src_site = 1;
    tr.dest_site = 2;
    tr.src_log_pos = static_cast<uint64_t>(i + 1);
    tr.prev_src_log_pos = static_cast<uint64_t>(i);
    tr.routine_id = 7;
    tr.payload = Bytes(100 + i, static_cast<uint8_t>(i));
    records.push_back(std::move(tr));
  }

  InlineRunner inline_runner;
  std::vector<Bytes> inline_encoded =
      core::EncodeTransmissionBatch(records, &inline_runner);
  ThreadPoolRunner pool({/*workers=*/4, /*queue_capacity=*/8, false});
  std::vector<Bytes> threaded_encoded =
      core::EncodeTransmissionBatch(records, &pool);
  ASSERT_EQ(inline_encoded.size(), records.size());
  for (size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(inline_encoded[i], threaded_encoded[i]) << i;
    EXPECT_EQ(inline_encoded[i], records[i].Encode()) << i;
  }

  std::vector<core::TransmissionDecodeJob> jobs(records.size());
  for (size_t i = 0; i < records.size(); ++i) {
    jobs[i].buf = threaded_encoded[i];
  }
  core::TransmissionDecodeJob garbage;
  garbage.buf = Bytes{0x01};  // truncated garbage: must fail cleanly
  jobs.push_back(std::move(garbage));
  core::DecodeTransmissionBatch(&jobs, &pool);
  for (size_t i = 0; i < records.size(); ++i) {
    ASSERT_TRUE(jobs[i].ok) << i;
    EXPECT_EQ(jobs[i].record.src_log_pos, records[i].src_log_pos);
    EXPECT_EQ(jobs[i].record.payload, records[i].payload);
  }
  EXPECT_FALSE(jobs.back().ok);
}

// ---------------------------------------------------------------------------
// Deployment equivalence: a threaded Runner must produce the same protocol
// outcome as the inline seam — same delivery, same log shapes, same source
// chain digest. The destination chain digest is deliberately NOT compared
// bit-for-bit: the received record embeds the f_i+1 transmission
// attestations, and WHICH correct peer attests first is a race (any
// f_i+1 valid signatures satisfy the threshold; the destination verifies
// that before committing), so attestor identity legitimately shifts when
// epilogue retirement moves to drain boundaries. The canonical dst
// summary below compares everything except signer identity.
// ---------------------------------------------------------------------------

struct ScenarioResult {
  uint64_t log_size_src = 0;
  uint64_t log_size_dst = 0;
  crypto::Digest chain_src{};
  /// One line per dst log entry: position, record type, source position,
  /// payload bytes, and the SIZE of the attestation proof.
  std::vector<std::string> dst_log;
  Bytes delivered;
};

/// Commits one value at the source site, sends one message cross-site, and
/// waits for delivery. With a threaded runner the simulator loop cannot
/// retire epilogues by itself, so the harness alternates event processing
/// with Drain() — the delivery ORDER is still the submission order.
ScenarioResult RunScenario(Runner* runner) {
  sim::Simulator simulator(99);
  core::BlockplaneOptions options;
  options.runner = runner;
  core::Deployment deployment(&simulator, net::Topology::Aws4(), options);

  bool committed = false;
  deployment.participant(net::kCalifornia)
      ->LogCommit(ToBytes("threaded-vs-inline"), 0,
                  [&](uint64_t) { committed = true; });
  deployment.participant(net::kCalifornia)
      ->Send(net::kOregon, ToBytes("cross-site payload"), 0, nullptr);

  ScenarioResult out;
  core::Participant* receiver = deployment.participant(net::kOregon);
  sim::SimTime deadline = sim::Seconds(120);
  while (simulator.Now() < deadline) {
    simulator.RunFor(sim::Milliseconds(1));
    if (runner != nullptr) runner->Drain();
    Bytes received;
    if (committed && receiver->TryReceive(net::kCalifornia, &received)) {
      out.delivered = std::move(received);
      break;
    }
  }
  if (runner != nullptr) runner->Drain();
  for (const auto& [pos, rec] : deployment.node(net::kOregon, 0)->log()) {
    char line[128];
    snprintf(line, sizeof(line), "pos=%llu type=%d srcpos=%llu pay=%zu nsig=%zu",
             static_cast<unsigned long long>(pos), static_cast<int>(rec.type),
             static_cast<unsigned long long>(rec.src_log_pos),
             rec.payload.size(), rec.proof.size());
    out.dst_log.emplace_back(line);
  }
  out.log_size_src = deployment.node(net::kCalifornia, 0)->log_size();
  out.log_size_dst = deployment.node(net::kOregon, 0)->log_size();
  out.chain_src = deployment.node(net::kCalifornia, 0)->chain_digest();
  return out;
}

TEST(RunnerDeploymentTest, ThreadedScenarioMatchesInline) {
  InlineRunner inline_runner;
  ScenarioResult inline_result = RunScenario(&inline_runner);
  ASSERT_EQ(inline_result.delivered, ToBytes("cross-site payload"));

  ThreadPoolRunner pool({/*workers=*/4, /*queue_capacity=*/64, false});
  ScenarioResult threaded = RunScenario(&pool);
  EXPECT_EQ(threaded.delivered, inline_result.delivered);
  EXPECT_EQ(threaded.log_size_src, inline_result.log_size_src);
  EXPECT_EQ(threaded.log_size_dst, inline_result.log_size_dst);
  EXPECT_EQ(threaded.chain_src, inline_result.chain_src);
  EXPECT_EQ(threaded.dst_log, inline_result.dst_log);
}

}  // namespace
}  // namespace blockplane
