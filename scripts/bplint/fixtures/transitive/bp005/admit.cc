// Transitive fixture group: bp005. A consensus-path file that never
// spells `double` or `float` itself — the violation is that Admit
// calls Trend, which computes in doubles two frames down (ewma.cc).
// Linted alone, Trend is unresolved and this file is clean.
// bplint:consensus-path

long Trend(long prev, long sample);

bool Admit(long prev, long sample, long threshold) {
  return Trend(prev, sample) > threshold;  // BP005 via the group only
}
