// A PBFT replica (Castro & Liskov OSDI'99) with the two Blockplane
// modifications from §IV-B of the paper:
//
//   1. Every committed value carries a record-type annotation (opaque to
//      this module; Blockplane encodes it inside the value).
//   2. When a replica becomes *prepared* it calls a registered verification
//      routine and withholds its commit-phase vote if verification fails.
//
// The replica implements the normal three-phase case, view changes with
// verifiable prepared-certificates, stable checkpoints with log truncation,
// and one-outstanding-batch proposal (the paper's group-commit rule:
// "a leader only attempts to commit a single batch and does not start the
// next one until the current one is committed").
//
// The replica deliberately does not register itself with the Network: a
// Blockplane node multiplexes several protocol stacks behind one NodeId and
// forwards PBFT traffic here via HandleMessage.
#ifndef BLOCKPLANE_PBFT_REPLICA_H_
#define BLOCKPLANE_PBFT_REPLICA_H_

#include <deque>
#include <functional>
#include <map>
#include <set>
#include <tuple>
#include <unordered_map>

#include "common/runner.h"
#include "crypto/signer.h"
#include "net/network.h"
#include "pbft/config.h"
#include "pbft/message.h"

namespace blockplane::pbft {

/// Byzantine behaviours injectable for testing (§VII lemmas).
enum class ByzantineMode {
  kNone = 0,
  /// Drops all input and produces no output (a crashed or mute node).
  kSilent,
  /// As leader, sends conflicting pre-prepares to different replicas.
  kEquivocate,
  /// Sends prepare/commit votes with corrupted digests.
  kBogusVotes,
  /// Never passes the verification routine (withholds commit votes).
  kRejectVerification,
  /// As a Blockplane unit leader: censors the first client request it sees
  /// (never proposing it) while continuing to propose later ones, and
  /// bypasses the honest admission projection. Downstream this yields
  /// non-contiguous geo positions in the unit log — the byzantine-leader
  /// geo-reorder attack the quarantine-and-gap-fill defense exists for
  /// (DESIGN.md §10).
  kReorderGeo,
};

class PbftReplica : public net::Host {
 public:
  /// Called for every committed value, in sequence order.
  using ExecuteCallback =
      std::function<void(uint64_t seq, const Bytes& value)>;
  /// The Blockplane verification-routine hook. Returning false withholds
  /// this replica's commit vote for the value.
  using Verifier = std::function<bool(const Bytes& value)>;

  PbftReplica(net::Network* network, crypto::KeyStore* keys,
              PbftConfig config, net::NodeId self, ExecuteCallback execute);

  BP_DISALLOW_COPY_AND_ASSIGN(PbftReplica);

  /// Registers this replica as the network host for its NodeId (standalone
  /// deployments only; embedded deployments forward messages instead).
  void RegisterWithNetwork();

  /// Feeds one PBFT message (types kRequest..kNewView).
  void HandleMessage(const net::Message& msg) override;

  void SetVerifier(Verifier verifier) { verifier_ = std::move(verifier); }

  /// Leader-side admission check for the sliding proposal window. The
  /// final-mode verifier (SetVerifier) judges values against *applied*
  /// state, which only matches propose time under stop-and-wait; with
  /// `config.window > 1` the leader must instead judge new values against a
  /// *projected* state that assumes every earlier admitted value commits.
  /// `admit` is called once per admitted value in proposal order (and must
  /// advance its projection on success); `reset` re-bases the projection on
  /// applied state. The replica calls `reset` on view entry and checkpoint
  /// install, then replays all decided-or-carried-but-unexecuted values
  /// through `admit` in sequence order to rebuild the projection. When no
  /// admission hook is set the plain verifier is used (seed behaviour,
  /// sufficient at window 1).
  using AdmissionCheck = std::function<bool(const Bytes& value)>;
  void SetAdmission(AdmissionCheck admit, std::function<void()> reset) {
    admission_ = std::move(admit);
    admission_reset_ = std::move(reset);
  }
  void SetByzantineMode(ByzantineMode mode) { byzantine_ = mode; }

  net::NodeId self() const { return self_; }
  uint64_t view() const { return view_; }
  net::NodeId leader() const { return config_.LeaderOf(view_); }
  bool IsLeader() const { return leader() == self_; }
  uint64_t last_executed() const { return last_executed_; }
  uint64_t last_stable_checkpoint() const { return last_stable_; }
  const PbftConfig& config() const { return config_; }

  /// Committed values by sequence number (test/diagnostic access).
  const std::map<uint64_t, Bytes>& executed_log() const {
    return executed_log_;
  }

  /// Asks peers for committed entries this replica is missing (used after
  /// recovery, and automatically when a replica falls behind). §VI-B.
  void CatchUp();

  /// Asks peers for their latest stable-checkpoint certificate — the
  /// recovery path when this replica is behind the garbage-collection
  /// window and plain CatchUp cannot find the entries anymore.
  void RequestSnapshot();

  /// Invoked with a verified snapshot certificate when this replica lags
  /// behind it. The application fetches and verifies the log contents,
  /// then calls InstallCheckpoint. Without a callback the checkpoint is
  /// installed directly (the executed values themselves are skipped).
  using SnapshotCallback = std::function<void(const SnapshotMsg&)>;
  void SetSnapshotCallback(SnapshotCallback callback) {
    snapshot_callback_ = std::move(callback);
  }

  /// Fast-forwards this replica to a certified checkpoint.
  void InstallCheckpoint(uint64_t seq, const Digest& state_digest);

 private:
  struct Instance {
    uint64_t view = 0;
    Digest digest{};
    bool has_preprepare = false;
    Signature preprepare_sig;
    Bytes value;
    uint64_t client_token = 0;
    uint64_t req_id = 0;
    /// A vote carries the digest it endorsed; votes that arrived before the
    /// pre-prepare are only counted if their digest matches it.
    struct Vote {
      Digest digest{};
      Signature sig;
    };
    /// Prepare votes by replica index (backups only), kept as signatures so
    /// prepared-certificates can be carried into view changes.
    std::map<int32_t, Vote> prepares;
    std::map<int32_t, Vote> commits;
    uint64_t commit_view = 0;  // view whose commit votes were collected
    bool sent_prepare = false;
    bool sent_commit = false;
    bool prepared = false;
    bool committed = false;
    /// Prepared but the verification routine rejected; re-tried as local
    /// state advances (the routine may depend on earlier executions).
    bool verify_pending = false;
    sim::EventId progress_timer = sim::kInvalidEventId;
    /// Causal trace of the request driving this instance (0 = untraced).
    /// Set from the pre-prepare (or the leader's pending request) and
    /// backfilled from the first traced vote that arrives before it.
    uint64_t trace_id = 0;
    /// Phase timestamps for the latency breakdown: when this replica first
    /// saw the instance, when it prepared, and when it committed. Spans are
    /// emitted at execution time (ExecuteReady).
    sim::SimTime ts_started = 0;
    sim::SimTime ts_prepared = 0;
    sim::SimTime ts_committed = 0;
  };

  /// A client request queued at the leader, with its causal trace and the
  /// time it entered the proposal queue (for queue-wait trace spans).
  struct PendingRequest {
    RequestMsg request;
    uint64_t trace_id = 0;
    sim::SimTime enqueued = 0;
  };

  // -- message handlers --
  void OnRequest(const net::Message& msg);
  void OnFetchCommitted(const net::Message& msg);
  void OnCommittedEntry(const net::Message& msg);
  void OnFetchSnapshot(const net::Message& msg);
  void OnSnapshot(const net::Message& msg);
  void OnCheckpoint(const net::Message& msg);
  void OnViewChange(const net::Message& msg);
  void OnNewView(const net::Message& msg);

  // -- the Runner seam (DESIGN.md §12) --
  /// State-only handlers dispatched from an epilogue: they ride the runner
  /// so they retire in delivery order relative to the offloaded types.
  void DispatchSerial(const net::Message& msg);
  /// Prologue for kPrePrepare: decode + leader/signature/digest checks,
  /// all pure over the captured message and the immutable config/keys.
  common::Runner::Prologue ProloguePrePrepare(net::Message msg);
  /// Prologue for kPrepare/kCommit: decode + membership + signature check.
  common::Runner::Prologue PrologueVote(net::Message msg);
  /// Epilogue halves: the state-touching remainder of the old handlers.
  void OnPrePrepareVerified(PrePrepareMsg pp, uint64_t trace_id);
  void OnVoteVerified(VoteMsg vote, int sender, uint64_t trace_id);
  /// Worker-thread-safe signature check for threaded prologues: skips the
  /// verify-once cache and its counters (KeyStore::VerifyDetached).
  bool VerifySigPure(const Bytes& canonical, const Signature& sig) const;

  // -- leader logic --
  void MaybeProposeNext();
  /// The proposal window in force right now: the adaptive provider when
  /// installed (clamped to >= 1), else the static config window.
  uint64_t EffectiveWindow() const;
  void Propose(uint64_t client_token, uint64_t req_id, Bytes value,
               uint64_t trace_id, sim::SimTime enqueued);
  /// Highest sequence number a leader may assign: the low watermark
  /// (last stable checkpoint) plus a span that keeps the un-truncated log
  /// bounded even when checkpoints lag the window.
  uint64_t HighWatermark() const;
  /// Propose-time admission: kRejectVerification parity, empty-value
  /// passthrough, then the projected-state admission hook (falling back to
  /// the final-mode verifier when no hook is installed).
  bool AdmitValue(const Bytes& value);
  /// Re-bases the admission projection on applied state, then replays every
  /// decided-or-carried-but-unexecuted value (`extra`, keyed by seq, wins
  /// over committed instances) through the admission hook in seq order.
  void RebuildAdmissionProjection(
      const std::map<uint64_t, const Bytes*>& extra);

  // -- phase transitions --
  void MaybePrepared(uint64_t seq);
  void MaybeCommitted(uint64_t seq);
  void SendCommitVote(uint64_t seq);
  void RetryPendingVerifications();
  /// Number of votes in `votes` matching the instance digest.
  template <typename Map>
  static int CountMatching(const Map& votes, const Digest& digest);
  void ExecuteReady();
  void SendReply(const Instance& instance, uint64_t seq);
  void TakeCheckpoint(uint64_t seq);

  // -- view changes --
  void ArmProgressTimer(uint64_t seq);
  void CancelProgressTimer(Instance* instance);
  /// (Re-)arms the censorship watchdog for a watched client request; when
  /// it fires without the request executing, the leader is suspect.
  void ArmRequestWatchdog(const std::pair<uint64_t, uint64_t>& key);
  void StartViewChange(uint64_t new_view);
  void MaybeAbandonViewChange();
  /// Installs view `v` from a validated set of view-change messages,
  /// recomputing the carried-over proposals deterministically.
  void EnterView(uint64_t v, const std::vector<ViewChangeMsg>& vcs);
  bool ValidatePreparedProof(const PreparedProof& proof) const;
  void MaybeSendNewView(uint64_t v);

  // -- plumbing --
  /// Encodes the payload once and fans it out by refcount bump: every
  /// recipient's Message shares one allocation (encode-once broadcast).
  /// `trace_id` (if non-zero) tags every outgoing Message for causal
  /// tracing; it rides the simulator Message out-of-band, not the wire.
  void Broadcast(net::MessageType type, Bytes payload, uint64_t trace_id = 0);
  void SendTo(net::NodeId dst, net::MessageType type, Bytes payload,
              uint64_t trace_id = 0);
  /// Sends an already-shared payload without copying (broadcast fan-out,
  /// verbatim request forwarding).
  void SendShared(net::NodeId dst, net::MessageType type,
                  net::PayloadPtr payload, uint64_t trace_id = 0);
  /// Canonical body for `vote`, memoized per (type, view, seq): the 2f+1
  /// votes of one instance share a single encode instead of re-encoding
  /// identical bytes per vote. Entries whose digest differs (byzantine
  /// bogus-digest votes) bypass the memo.
  const Bytes& CanonicalBodyFor(const VoteMsg& vote);
  Signature Sign(const Bytes& canonical) const;
  bool VerifySig(const Bytes& canonical, const Signature& sig) const;
  Digest DigestOf(const Bytes& value) const {
    return ComputeDigest(value, config_.hash_payloads);
  }
  bool RunVerifier(const Bytes& value) const;

  net::Network* network_;
  sim::Simulator* sim_;
  crypto::KeyStore* keys_;
  std::unique_ptr<crypto::Signer> signer_;
  PbftConfig config_;
  /// config_.runner, or the process-wide InlineRunner. Never null.
  common::Runner* runner_;
  net::NodeId self_;
  int index_;
  ExecuteCallback execute_;
  Verifier verifier_;
  AdmissionCheck admission_;
  std::function<void()> admission_reset_;
  ByzantineMode byzantine_ = ByzantineMode::kNone;

  uint64_t view_ = 0;
  bool in_view_change_ = false;
  uint64_t target_view_ = 0;
  sim::EventId view_change_timer_ = sim::kInvalidEventId;
  /// Consecutive view-change escalations without entering a view. Drives
  /// the capped exponential backoff of the escalation timer; reset on view
  /// entry and when a lone view change is abandoned.
  uint64_t viewchange_attempts_ = 0;
  /// Per-replica jitter stream for the view-change backoff. Seeded
  /// deterministically from this replica's identity (NOT forked from the
  /// simulator's root RNG — forking there would perturb every downstream
  /// fork and break golden traces).
  sim::Rng backoff_rng_;
  /// kReorderGeo: set once the byzantine leader has censored its first
  /// request.
  bool reorder_stashed_ = false;

  uint64_t next_seq_ = 1;  // leader: next sequence number to assign
  /// True while the current window-stall episode is open: the leader had
  /// queued requests it could not propose. pbft_window_stalls counts
  /// episode openings, not pump invocations; any successful proposal
  /// (partial drain included) closes the episode.
  bool window_stalled_ = false;
  std::deque<PendingRequest> pending_requests_;
  /// Requests already assigned a sequence number (leader-side dedup).
  std::set<std::pair<uint64_t, uint64_t>> assigned_requests_;

  std::map<uint64_t, Instance> instances_;  // by seq
  uint64_t last_executed_ = 0;
  uint64_t last_stable_ = 0;
  std::map<uint64_t, Bytes> executed_log_;
  Digest state_digest_{};  // rolling digest chained over executed values

  /// Per-client dedup of executed requests and cached replies. Request ids
  /// are tracked as sets: concurrent submissions may execute out of id
  /// order under network jitter.
  std::unordered_map<uint64_t, std::set<uint64_t>> executed_reqs_;
  std::unordered_map<uint64_t, std::map<uint64_t, Bytes>> cached_replies_;

  /// Checkpoint votes: seq -> digest -> signatures by replica index.
  std::map<uint64_t, std::map<Digest, std::map<int32_t, Signature>>>
      checkpoint_votes_;
  /// The latest stable checkpoint's certificate (2f+1 signatures), served
  /// to recovering peers.
  SnapshotMsg stable_snapshot_;
  SnapshotCallback snapshot_callback_;

  /// View-change messages per target view, by replica index.
  std::map<uint64_t, std::map<int32_t, ViewChangeMsg>> view_changes_;

  /// Requests observed via forwarding, awaiting leader progress. The
  /// request payload is kept so that, on view entry, every backup can
  /// re-forward it to the new leader immediately and restart the watchdog
  /// with a full timeout — otherwise watchdogs armed before the view
  /// change depose each new leader before a client retransmission can
  /// reach it, and the request starves through a view-change storm.
  struct WatchedRequest {
    sim::EventId timer = sim::kInvalidEventId;
    net::PayloadPtr payload;  // the encoded kRequest body, shared
    uint64_t trace_id = 0;
  };
  std::map<std::pair<uint64_t, uint64_t>, WatchedRequest> watched_requests_;

  /// After a view change: the digest each carried-over seq must have in the
  /// current view. Pre-prepares for these seqs are accepted only on match.
  std::map<uint64_t, Digest> expected_digests_;

  /// Memo for CanonicalBodyFor: (vote type, view, seq) -> (digest, encoded
  /// canonical body). Bounded: cleared wholesale past kCanonicalMemoMax
  /// entries (deterministic, and instances churn fast enough that a full
  /// reset is cheap).
  struct CanonicalMemoEntry {
    Digest digest{};
    Bytes body;
  };
  static constexpr size_t kCanonicalMemoMax = 4096;
  std::map<std::tuple<uint8_t, uint64_t, uint64_t>, CanonicalMemoEntry>
      canonical_memo_;
};

}  // namespace blockplane::pbft

#endif  // BLOCKPLANE_PBFT_REPLICA_H_
