// End-to-end behaviour over an unreliable network: Blockplane's layered
// retransmission (client retries, daemon retransmissions, PBFT catch-up and
// view changes, geo retries) must mask low-rate message loss and
// corruption. Corrupted protocol messages must be rejected (bad digests /
// failed decodes), never misinterpreted.
#include <gtest/gtest.h>

#include "core/deployment.h"
#include "protocols/counter.h"
#include "sim/simulator.h"

namespace blockplane::core {
namespace {

using net::Topology;
using sim::Seconds;

class LossySweepTest
    : public ::testing::TestWithParam<std::tuple<double, int>> {};

TEST_P(LossySweepTest, CounterConvergesDespiteDrops) {
  auto [drop_prob, seed] = GetParam();
  sim::Simulator simulator(static_cast<uint64_t>(seed));
  Deployment deployment(&simulator, Topology::Aws4(), {});
  protocols::CounterProtocol counter(&deployment);
  deployment.network()->set_drop_prob(drop_prob);

  constexpr int kRequests = 4;
  for (int i = 0; i < kRequests; ++i) {
    counter.UserRequest(net::kCalifornia, net::kOregon, "trusted-lossy");
  }
  ASSERT_TRUE(simulator.RunUntilCondition(
      [&] { return counter.counter(net::kOregon) == kRequests; },
      Seconds(600)))
      << "drop=" << drop_prob << " seed=" << seed << " got "
      << counter.counter(net::kOregon);
  // Exactly-once even with retransmissions everywhere.
  simulator.RunFor(Seconds(5));
  EXPECT_EQ(counter.counter(net::kOregon), kRequests);
  EXPECT_GT(deployment.network()->counters().Get("dropped_messages"), 0);
}

INSTANTIATE_TEST_SUITE_P(
    Rates, LossySweepTest,
    ::testing::Combine(::testing::Values(0.002, 0.01),
                       ::testing::Values(1, 2)),
    [](const ::testing::TestParamInfo<std::tuple<double, int>>& pinfo) {
      return "drop" +
             std::to_string(
                 static_cast<int>(std::get<0>(pinfo.param) * 1000)) +
             "permille_seed" + std::to_string(std::get<1>(pinfo.param));
    });

TEST(LossyNetworkTest, CorruptionIsRejectedNotMisinterpreted) {
  sim::Simulator simulator(71);
  Deployment deployment(&simulator, Topology::Aws4(), {});
  deployment.network()->set_corrupt_prob(0.01);

  int completed = 0;
  for (int i = 0; i < 5; ++i) {
    deployment.participant(net::kCalifornia)
        ->LogCommit(ToBytes("payload-" + std::to_string(i)), 0,
                    [&](uint64_t) { ++completed; });
  }
  ASSERT_TRUE(simulator.RunUntilCondition([&] { return completed == 5; },
                                          Seconds(600)));
  simulator.RunFor(Seconds(5));
  // Whatever committed is exactly what was sent — flipped bytes can only
  // delay (failed digest checks trigger retries), never alter.
  const auto& log = deployment.node(net::kCalifornia, 0)->log();
  ASSERT_EQ(log.size(), 5u);
  std::set<std::string> seen;
  for (auto& [pos, record] : log) {
    seen.insert(ToString(record.payload));
  }
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(seen.count("payload-" + std::to_string(i)) > 0);
  }
}

// --- asymmetric partitions ----------------------------------------------------

namespace {

/// Records every delivered message body.
struct SinkHost : net::Host {
  int received = 0;
  void HandleMessage(const net::Message&) override { ++received; }
};

net::Message Ping(net::NodeId src, net::NodeId dst) {
  net::Message msg;
  msg.src = src;
  msg.dst = dst;
  msg.type = 250;
  msg.set_body(ToBytes("ping"));
  return msg;
}

}  // namespace

TEST(LossyNetworkTest, OneWayPartitionDropsOnlyForwardDirection) {
  sim::Simulator simulator(5);
  net::Network network(&simulator, Topology::Uniform(2, 40.0));
  SinkHost at_a, at_b;
  net::NodeId a{0, 0}, b{1, 0};
  network.Register(a, &at_a);
  network.Register(b, &at_b);

  network.PartitionOneWay(0, 1);
  EXPECT_TRUE(network.IsPartitioned(0, 1));
  EXPECT_FALSE(network.IsPartitioned(1, 0));

  network.Send(Ping(a, b));  // blocked direction
  network.Send(Ping(b, a));  // open direction
  simulator.Run();
  EXPECT_EQ(at_b.received, 0);
  EXPECT_EQ(at_a.received, 1);

  network.HealOneWay(0, 1);
  EXPECT_FALSE(network.IsPartitioned(0, 1));
  network.Send(Ping(a, b));
  simulator.Run();
  EXPECT_EQ(at_b.received, 1);
}

TEST(LossyNetworkTest, HealAllClearsSymmetricAndOneWayPartitions) {
  sim::Simulator simulator(6);
  net::Network network(&simulator, Topology::Uniform(3, 40.0));
  network.PartitionSites(0, 1);
  network.PartitionOneWay(1, 2);
  EXPECT_TRUE(network.IsPartitioned(0, 1));
  EXPECT_TRUE(network.IsPartitioned(1, 0));
  EXPECT_TRUE(network.IsPartitioned(1, 2));
  EXPECT_FALSE(network.IsPartitioned(2, 1));

  network.HealAll();
  for (net::SiteId from = 0; from < 3; ++from) {
    for (net::SiteId to = 0; to < 3; ++to) {
      EXPECT_FALSE(network.IsPartitioned(from, to))
          << from << " -> " << to;
    }
  }
}

// A one-way cut on the transmission direction is masked end-to-end: the
// daemons keep retransmitting into the black hole (acks still flow the
// open way but nothing arrives to ack) until the route heals.
TEST(LossyNetworkTest, OneWayPartitionIsMaskedAfterHeal) {
  sim::Simulator simulator(8);
  Deployment deployment(&simulator, Topology::Aws4(), {});
  protocols::CounterProtocol counter(&deployment);
  deployment.network()->PartitionOneWay(net::kCalifornia, net::kOregon);

  counter.UserRequest(net::kCalifornia, net::kOregon, "trusted-one-way");
  simulator.RunFor(Seconds(8));
  EXPECT_EQ(counter.counter(net::kOregon), 0) << "partition not effective";

  deployment.network()->HealAll();
  ASSERT_TRUE(simulator.RunUntilCondition(
      [&] { return counter.counter(net::kOregon) == 1; }, Seconds(60)));
}

}  // namespace
}  // namespace blockplane::core
