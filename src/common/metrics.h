// Measurement helpers used by the benchmark harness and tests: latency
// histograms with percentiles, simple counters, and time-series recorders
// for the failure-timeline experiments (Fig. 8).
#ifndef BLOCKPLANE_COMMON_METRICS_H_
#define BLOCKPLANE_COMMON_METRICS_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/macros.h"

namespace blockplane {

/// Collects double-valued samples (typically latencies in milliseconds) and
/// reports summary statistics.
class Histogram {
 public:
  void Add(double value);
  void Clear();

  size_t count() const { return samples_.size(); }
  double Mean() const;
  double Min() const;
  double Max() const;
  double Stddev() const;
  /// p in [0, 100]; nearest-rank on sorted samples.
  double Percentile(double p) const;
  double Median() const { return Percentile(50.0); }

  const std::vector<double>& samples() const { return samples_; }

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
  void EnsureSorted() const;
};

/// Ordered (x, y) series, e.g. (batch number, latency ms) for Fig. 8.
class TimeSeries {
 public:
  void Add(double x, double y) { points_.push_back({x, y}); }
  struct Point {
    double x;
    double y;
  };
  const std::vector<Point>& points() const { return points_; }
  void Clear() { points_.clear(); }

 private:
  std::vector<Point> points_;
};

/// Process-wide counters for the byzantizing hot path (encode-once /
/// verify-once / zero-copy; see DESIGN.md §"Hot path & caching").
///
/// These are observability-only: nothing reads them to make protocol
/// decisions, so they cannot perturb determinism. Plain int64 fields keep
/// the increment cost to one add on paths that run once per signature or
/// per broadcast fan-out. Benchmarks and tests snapshot/Reset() them.
struct HotPathStats {
  /// Signature verifications answered from a verify-once cache (the HMAC
  /// recomputation was skipped entirely).
  int64_t sig_cache_hits = 0;
  /// Verifications that had to run the full HMAC (and seeded the cache).
  int64_t sig_cache_misses = 0;
  /// Canonical-body/header encodes skipped because a memoized verdict or a
  /// shared already-encoded buffer made re-encoding unnecessary.
  int64_t encodes_elided = 0;
  /// Payload bytes that would have been deep-copied by broadcast fan-out,
  /// retransmission buffers, or out-of-order receive buffering before the
  /// switch to shared (refcounted) payloads.
  int64_t bytes_copied_saved = 0;
  /// MACs computed through a PrecomputedHmacKey midstate (2 compressions)
  /// instead of the naive schedule (4 compressions + setup).
  int64_t hmac_precomputed_ops = 0;
  /// Entries evicted from bounded verify-once caches.
  int64_t verify_cache_evictions = 0;

  void Reset() { *this = HotPathStats{}; }
};

/// The process-wide hot-path counter block.
HotPathStats& hotpath_stats();

/// Process-wide counters for the reliable transport. Like HotPathStats,
/// observability-only: plain int64 increments, snapshotted via the metrics
/// registry and reset by benches/tests.
struct TransportStats {
  /// Data frames sent for the first time (excludes retransmissions).
  int64_t frames_sent = 0;
  /// Timeout-driven retransmissions.
  int64_t retransmissions = 0;
  /// Frames or acks discarded because their checksum failed.
  int64_t discarded_corrupt = 0;
  /// In-flight frames abandoned after max_retries — the sender gave up on
  /// the peer. Each one also fires the transport's on_drop callback; a
  /// non-zero count with no drop handler installed means some upper layer
  /// may be waiting forever on a dead peer.
  int64_t frames_abandoned = 0;
  /// Payload bytes NOT copied thanks to the rvalue Send path (the old
  /// by-value signature deep-copied every payload once at the API boundary
  /// before the frame encoder copied it again).
  int64_t bytes_copied_saved = 0;
  /// Clean per-peer RTT samples fed into the retransmission-timer
  /// estimator (acks of never-retransmitted frames; Karn's rule).
  int64_t rtt_samples = 0;

  void Reset() { *this = TransportStats{}; }
};

/// The process-wide transport counter block.
TransportStats& transport_stats();

/// Process-wide counters for the sliding-window commit pipeline (pipelined
/// PBFT + windowed geo-commit + batcher k-in-flight; DESIGN.md §9). Like the
/// other stat blocks these are observability-only: nothing reads them to make
/// protocol decisions, so they cannot perturb determinism.
struct PipelineStats {
  /// Pre-prepares sent by unit leaders (each is one pipelined instance).
  int64_t pbft_proposals = 0;
  /// Peak number of concurrently outstanding (proposed-but-unexecuted)
  /// PBFT instances observed at any leader.
  int64_t pbft_inflight_peak = 0;
  /// Values the leader-side admission projection rejected at propose time
  /// (these are dropped, mirroring the seed's propose-time verifier drops).
  int64_t pbft_admission_rejects = 0;
  /// Times a leader had a queued value but could not propose because the
  /// window was full or the high watermark (checkpoint lag) was reached.
  int64_t pbft_window_stalls = 0;
  /// Commit certificates that completed out of sequence order and had to
  /// wait for an earlier instance before executing.
  int64_t pbft_ooo_commits = 0;
  /// Peak number of concurrently in-flight participant geo ops.
  int64_t participant_inflight_peak = 0;
  /// Ops whose completion callback was held back to preserve submission
  /// order (the geo round finished before an earlier op's round).
  int64_t participant_ooo_completions = 0;
  /// Peak number of concurrently in-flight batcher group commits.
  int64_t batcher_inflight_peak = 0;
  /// Distinct episodes in which a participant had queued ops but its geo
  /// window was full. An episode ends when any op is admitted (partial
  /// drain), not only when the queue empties.
  int64_t participant_window_stalls = 0;
  /// Distinct episodes in which a comm daemon had committed communication
  /// records to ship but its flight window was full. Episode semantics as
  /// above: any admission closes the episode.
  int64_t daemon_window_stalls = 0;

  void Reset() { *this = PipelineStats{}; }
};

/// The process-wide pipeline counter block.
PipelineStats& pipeline_stats();

/// Process-wide aggregate counters for the adaptive per-destination window
/// controllers (DESIGN.md §13). Each live controller additionally registers
/// its own "congestion.<label>" gauge group with the registry; this block
/// sums the events across all controllers (and outlives them, so tests can
/// assert on totals after a deployment is torn down). Observability-only.
struct CongestionStats {
  /// WindowController instances constructed (adaptive mode only).
  int64_t controllers_created = 0;
  /// Clean RTT samples accepted by controllers (Karn-filtered).
  int64_t rtt_samples = 0;
  /// Additive window increases (slow-start and congestion-avoidance).
  int64_t increases = 0;
  /// Multiplicative decreases actually applied (spike threshold crossed or
  /// view-change churn, rate-limited to one per RTO).
  int64_t decreases = 0;
  /// Raw loss signals observed (retransmission timeouts); a spike of these
  /// within one RTO is what triggers a decrease.
  int64_t loss_events = 0;
  /// Decreases attributed to view-change churn rather than loss spikes.
  int64_t viewchange_decreases = 0;

  void Reset() { *this = CongestionStats{}; }
};

/// The process-wide congestion counter block.
CongestionStats& congestion_stats();

/// Process-wide counters for robustness machinery: view-change retry
/// backoff and the commit-time geo-contiguity quarantine (DESIGN.md §10).
/// Observability-only, like the other stat blocks — nothing reads them to
/// make protocol decisions.
struct RobustnessStats {
  /// View-change escalations: each increment is one failed view-change
  /// attempt that re-armed the (backed-off) escalation timer.
  int64_t viewchange_attempts = 0;
  /// Cumulative milliseconds of escalation-timer delay scheduled across
  /// all view-change attempts (jitter included). Dividing by
  /// viewchange_attempts gives the mean per-attempt backoff.
  int64_t viewchange_backoff_ms = 0;
  /// API records whose geo_pos arrived ahead of the contiguous stream and
  /// were quarantined (side effects deferred) at apply time.
  int64_t geo_quarantined = 0;
  /// Quarantined records later released in geo order once the gap filled.
  int64_t geo_quarantine_released = 0;
  /// Records dropped from the api stream: stale/duplicate geo positions or
  /// positions beyond the quarantine bound (byzantine-injected garbage).
  int64_t geo_quarantine_dropped = 0;
  /// kGeoGapNotice messages sent by unit nodes to their participant.
  int64_t geo_gap_notices = 0;
  /// Participant-side gap-fill nudges (pending-request rebroadcasts
  /// triggered by a gap notice).
  int64_t geo_gap_nudges = 0;
  /// Mirror-side gap backfill (§V outage recovery): kMirrorFetch rounds a
  /// lagging mirror group's leader issued to its peer mirrors.
  int64_t mirror_gap_fetches = 0;
  /// Backfilled mirror entries submitted for commit to close a gap.
  int64_t mirror_gap_filled = 0;

  void Reset() { *this = RobustnessStats{}; }
};

/// The process-wide robustness counter block.
RobustnessStats& robustness_stats();

/// Process-wide counters for the Runner seam (DESIGN.md §12). Updated only
/// from runner submit/retire threads — every supported configuration is
/// single-submitter, so that is one thread and plain int64 fields stay
/// race-free. Worker threads never touch this block (BP007 discipline).
struct RunnerStats {
  /// Prologues submitted through any Runner (inline or threaded).
  int64_t prologues_submitted = 0;
  /// Epilogue slots retired, in submission order (includes dropped ones).
  int64_t epilogues_retired = 0;
  /// Prologues that returned a null epilogue — the message died in the
  /// pure stage (decode failure, bad signature, wrong destination).
  int64_t prologues_dropped = 0;
  /// Submissions that found the bounded queue full and had to block,
  /// retiring ready epilogues while waiting.
  int64_t backpressure_waits = 0;
  /// Peak submitted-but-unretired depth observed across all runners.
  int64_t queue_depth_peak = 0;
  /// Fork-join tasks executed through RunBatch (crypto/codec batch
  /// helpers); these bypass the ordered window and retire no epilogues.
  int64_t batch_tasks = 0;

  void Reset() { *this = RunnerStats{}; }
};

/// The process-wide runner counter block.
RunnerStats& runner_stats();

/// Process-wide counters for quorum-certificate aggregation (DESIGN.md §14).
/// Observability-only, like the other stat blocks — nothing reads them to
/// make protocol decisions. Updated only from retire/serial threads (BP007):
/// worker-thread cert checks go through VerifyCertDetached, which touches
/// nothing here, and their accounting lands at ordered epilogue retirement.
struct QcStats {
  /// Certificates assembled from completed f_i+1 signature sets.
  int64_t certs_built = 0;
  /// Certificates that ran the full MAC-recompute verification (cold path —
  /// the cache had no entry, or caching was disabled).
  int64_t certs_verified = 0;
  /// Cert-cache probes that answered a verification outright.
  int64_t cache_hits = 0;
  /// Individual MAC verifications skipped thanks to cert-cache hits (each
  /// hit elides the certificate's full signer count).
  int64_t verifies_elided = 0;
  /// Individual MAC verifications actually performed while checking proofs:
  /// per matching signature in VerifyProof, per listed signer in a cold
  /// cert verification. The QC-on / QC-off ratio of this counter is the
  /// bench ablation's headline number.
  int64_t proof_sig_verifies = 0;
  /// Wire bytes of proof material (signature vectors or certificates)
  /// shipped across the WAN by comm daemons, counted once per receiver.
  int64_t wan_proof_bytes = 0;

  void Reset() { *this = QcStats{}; }
};

/// The process-wide quorum-certificate counter block.
QcStats& qc_stats();

/// Named counters, useful for asserting message complexity in tests
/// (e.g. "wide-area messages sent").
class CounterSet {
 public:
  void Increment(const std::string& name, int64_t delta = 1) {
    counters_[name] += delta;
  }
  int64_t Get(const std::string& name) const {
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
  }
  void Clear() { counters_.clear(); }
  const std::map<std::string, int64_t>& all() const { return counters_; }

 private:
  std::map<std::string, int64_t> counters_;
};

/// One registry to rule the counters: unifies HotPathStats, TransportStats,
/// per-Network CounterSets, and anything else behind a named
/// snapshot/reset/JSON interface, so `bench_*` binaries and scripts/check.sh
/// can dump every perf counter in one call instead of knowing each source.
///
/// Groups register a snapshot function (name -> value) and an optional
/// reset function. The built-in "hotpath" and "transport" groups are
/// registered on first access; Network instances register/unregister
/// themselves in their constructor/destructor. Duplicate group names are
/// disambiguated with a "#<handle>" suffix in snapshots, keeping output
/// deterministic when e.g. two simulations coexist in one test binary.
class MetricsRegistry {
 public:
  using SnapshotFn = std::function<std::map<std::string, int64_t>()>;
  using ResetFn = std::function<void()>;

  MetricsRegistry();
  BP_DISALLOW_COPY_AND_ASSIGN(MetricsRegistry);

  /// Registers a counter group; returns a handle for Unregister.
  int64_t Register(std::string name, SnapshotFn snapshot,
                   ResetFn reset = nullptr);
  void Unregister(int64_t handle);

  /// group name (possibly "#<handle>"-suffixed) -> counter name -> value.
  std::map<std::string, std::map<std::string, int64_t>> Snapshot() const;

  /// Resets every group that registered a reset function.
  void ResetAll();

  /// The full snapshot as pretty-printed JSON (stable key order).
  std::string ToJson() const;

 private:
  struct Entry {
    std::string name;
    SnapshotFn snapshot;
    ResetFn reset;
  };
  std::map<int64_t, Entry> entries_;  // keyed by handle: deterministic order
  int64_t next_handle_ = 1;
};

/// The process-wide registry (built-in groups pre-registered).
MetricsRegistry& metrics_registry();

}  // namespace blockplane

#endif  // BLOCKPLANE_COMMON_METRICS_H_
