// Deterministic fault campaigns (DESIGN.md §10).
//
// A Campaign is a seeded, pre-compiled schedule of fault actions — node
// crashes and recoveries, site outages, symmetric and one-way partitions,
// message drop/corrupt/duplicate bursts, and scripted byzantine behaviors
// (equivocation, certificate withholding, reply forgery, geo-reordering
// leaders). CompileCampaign turns a CampaignConfig (seed + schedule
// template + deployment shape) into a concrete action list under
// recoverability constraints:
//
//   * at most f_i simultaneously-faulty (crashed or byzantine) nodes per
//     unit, so PBFT safety always holds and liveness returns after heals,
//   * at most one full-site outage at a time, always healed,
//   * every partition and probability burst ends before `horizon`, and the
//     compiled schedule ends with a heal-everything action,
//   * byzantine role assignments are permanent for the run but capped at
//     f_i per unit (the paper's fault model).
//
// The same (config → campaign) mapping is bit-for-bit deterministic, so a
// failing campaign is fully reproducible from its JSON (which embeds the
// config). The chaos engine (engine.h) applies a campaign to a real
// core::Deployment and checks cross-site invariants afterwards.
#ifndef BLOCKPLANE_CHAOS_CAMPAIGN_H_
#define BLOCKPLANE_CHAOS_CAMPAIGN_H_

#include <string>
#include <vector>

#include "net/node_id.h"
#include "sim/sim_time.h"

namespace blockplane::chaos {

enum class FaultType : uint8_t {
  kCrashNode = 1,   // site_a + node_index; paired with kRecoverNode
  kRecoverNode,     // also re-runs the node's catch-up (§VI-B)
  kCrashSite,       // site_a; paired with kRecoverSite
  kRecoverSite,
  kPartition,       // site_a <-> site_b, both directions
  kHeal,
  kPartitionOneWay,  // site_a -> site_b only
  kHealOneWay,
  kDropBurst,       // probability for duration, then restored to 0
  kCorruptBurst,
  kDuplicateBurst,
  kHealAll,         // heal every partition (the end-of-campaign sweep)
  // Scripted byzantine behaviors (site_a + node_index; permanent).
  kByzEquivocate,       // leader sends conflicting pre-prepares
  kByzSilent,           // mute node
  kByzBogusVotes,       // corrupted vote digests
  kByzWithholdAttest,   // certificate withholding: never attests
  kByzForgeReads,       // reply forgery on the read path
  kByzReorderGeo,       // unit leader censors a request -> non-contiguous
                        // geo positions (DESIGN.md §10 defense target)
};

/// Human-readable name of a fault type (stable; used in campaign JSON).
const char* FaultTypeName(FaultType type);

struct FaultAction {
  sim::SimTime at = 0;
  FaultType type = FaultType::kCrashNode;
  net::SiteId site_a = -1;
  net::SiteId site_b = -1;
  int node_index = -1;
  double probability = 0.0;   // bursts only
  sim::SimTime duration = 0;  // bursts only (engine restores at at+duration)
};

/// The four soak schedule templates.
enum class ScheduleTemplate : uint8_t {
  kCrashHeavy = 0,
  kPartitionHeavy = 1,
  kByzantineHeavy = 2,
  kMixed = 3,
};

const char* ScheduleTemplateName(ScheduleTemplate t);

struct CampaignConfig {
  uint64_t seed = 1;
  ScheduleTemplate schedule = ScheduleTemplate::kMixed;

  /// Deployment shape. fg > 0 enables geo mirroring (and the geo-reorder
  /// byzantine action); templates pick their own default below.
  int num_sites = 3;
  int fi = 1;
  int fg = 0;
  uint64_t pbft_window = 1;
  uint64_t participant_window = 1;
  /// Enables the adaptive AIMD window controllers (DESIGN.md §13) in every
  /// daemon/participant/replica of the deployment. Off preserves the
  /// static-window campaigns bit-for-bit.
  bool adaptive_windows = false;
  /// Enables quorum-certificate aggregation (DESIGN.md §14): compact certs
  /// in place of f_i+1 signature vectors on the wire, verified once per
  /// receiver via the cert cache. Off preserves wire-v1 campaigns
  /// bit-for-bit.
  bool quorum_certs = false;
  double rtt_ms = 40.0;

  /// All faults are injected in [start, horizon] and healed by horizon.
  sim::SimTime start = sim::Milliseconds(500);
  sim::SimTime horizon = sim::Seconds(20);
  /// Liveness deadline: every workload completion must fire by then.
  sim::SimTime deadline = sim::Seconds(60);

  /// Workload: log-commits and cross-site sends per participant, spread
  /// over [0, horizon].
  int ops_per_site = 6;
  int sends_per_site = 2;
  /// Quorum reads issued (byzantine templates; 0 elsewhere).
  int reads_per_site = 0;
};

struct Campaign {
  CampaignConfig config;
  std::vector<FaultAction> actions;  // sorted by `at`

  /// Full campaign as pretty-printed JSON: the config (sufficient to
  /// recompile the identical campaign) plus the expanded action list.
  std::string ToJson() const;
};

/// Applies the template's deployment-shape defaults (fg, windows, reads)
/// to `config` and compiles the seeded action schedule.
Campaign CompileCampaign(CampaignConfig config);

}  // namespace blockplane::chaos

#endif  // BLOCKPLANE_CHAOS_CAMPAIGN_H_
