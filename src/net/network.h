// The simulated network.
//
// Cost model for delivering a message from node A (site Sa) to node B (Sb):
//
//   start      = max(now, A's NIC free time)            // FIFO per sender NIC
//   serialize  = wire_bytes / bandwidth(Sa, Sb)
//   propagate  = OneWay(Sa, Sb)  (+ seeded jitter)      // intra-site one-way
//                                                       //   when Sa == Sb
//   arrive     = start + serialize + propagate
//   handled_at = max(arrive, B's CPU free time) + per_message_cpu
//
// The per-NIC serialization queue is what reproduces the bandwidth
// saturation of Fig. 4 / Table II (a PBFT leader pushing a 1 MB batch to
// n-1 replicas shares one 640 MB/s NIC); the per-CPU handling queue models
// the message-processing pressure of larger units.
//
// Fault injection (crashes, site outages, partitions, drops, corruption,
// duplication) lives here so that every protocol sees the same failure
// semantics.
#ifndef BLOCKPLANE_NET_NETWORK_H_
#define BLOCKPLANE_NET_NETWORK_H_

#include <set>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "common/metrics.h"
#include "net/message.h"
#include "net/node_id.h"
#include "net/topology.h"
#include "sim/simulator.h"

namespace blockplane::net {

/// Anything that can receive messages from the network.
class Host {
 public:
  virtual ~Host() = default;
  virtual void HandleMessage(const Message& msg) = 0;
};

struct NetworkOptions {
  /// Intra-site NIC bandwidth; the paper measured 640 MB/s with iperf.
  double lan_bandwidth_bps = 640e6;
  /// Wide-area bandwidth (the paper's WAN payloads are small, so this
  /// rarely matters).
  double wan_bandwidth_bps = 640e6;
  /// One-way latency between two nodes in the same site.
  sim::SimTime intra_site_one_way = sim::Microseconds(250);
  /// Serial per-message receive-processing cost at a node.
  sim::SimTime per_message_cpu = sim::Microseconds(30);
  /// Uniform jitter added to propagation, as a fraction of the one-way
  /// latency (e.g. 0.02 = up to 2%).
  double jitter_frac = 0.02;
  /// Bytes of protocol/transport headers modeled on top of each payload.
  uint64_t header_bytes = 64;
  /// Per-message-type WAN byte accounting: adds a `wan_bytes.type_<id>`
  /// counter per protocol MessageType tag seen on wide-area sends. Off by
  /// default — it is bench-only instrumentation (bench_fig6's
  /// per-message-type breakdown), and keeping it off leaves the counter
  /// namespace byte-identical to the seed.
  bool per_type_wan_counters = false;
  /// Unreliable-channel knobs (exercised through ReliableTransport).
  double drop_prob = 0.0;
  double corrupt_prob = 0.0;
  double duplicate_prob = 0.0;
};

class Network {
 public:
  Network(sim::Simulator* simulator, Topology topology,
          NetworkOptions options = {});
  ~Network();
  BP_DISALLOW_COPY_AND_ASSIGN(Network);

  /// Registers the handler for a node. Re-registering replaces the handler
  /// (used when a node recovers with fresh state).
  void Register(NodeId id, Host* host);
  void Unregister(NodeId id);

  /// Sends a message. Delivery is asynchronous via the simulator; the send
  /// itself never fails (failures manifest as silence, like UDP).
  void Send(Message msg);

  const Topology& topology() const { return topology_; }
  const NetworkOptions& options() const { return options_; }
  sim::Simulator* simulator() const { return sim_; }

  // --- Fault injection -----------------------------------------------------

  /// Crashes a node: all traffic to and from it is dropped until Recover.
  void Crash(NodeId id);
  void Recover(NodeId id);
  bool IsCrashed(NodeId id) const;

  /// Crashes every node of a site (a geo-correlated, datacenter-scale
  /// outage per §V of the paper).
  void CrashSite(SiteId site);
  void RecoverSite(SiteId site);
  bool IsSiteCrashed(SiteId site) const;

  /// Drops all traffic between two sites (both directions).
  void PartitionSites(SiteId a, SiteId b);
  void HealPartition(SiteId a, SiteId b);

  /// One-way (asymmetric) partition: drops traffic flowing `from` -> `to`
  /// only; the reverse direction still delivers. Models the asymmetric
  /// route failures common on wide-area links (BGP blackholes, unidirectional
  /// congestion collapse) that symmetric partitions cannot express.
  void PartitionOneWay(SiteId from, SiteId to);
  void HealOneWay(SiteId from, SiteId to);
  /// True if traffic flowing `from` -> `to` is currently dropped (by either
  /// a symmetric or a matching one-way partition).
  bool IsPartitioned(SiteId from, SiteId to) const;
  /// Heals every partition (symmetric and one-way) at once. Crash state is
  /// untouched; use RecoverSite/Recover for that.
  void HealAll();

  void set_drop_prob(double p) { options_.drop_prob = p; }
  void set_corrupt_prob(double p) { options_.corrupt_prob = p; }
  void set_duplicate_prob(double p) { options_.duplicate_prob = p; }

  // --- Accounting ----------------------------------------------------------

  /// Counters: {lan,wan}_messages, {lan,wan}_bytes, dropped_messages,
  /// corrupted_messages.
  const CounterSet& counters() const { return counters_; }
  void ResetCounters() { counters_.Clear(); }

 private:
  void Deliver(const Message& msg, sim::SimTime arrive);
  void HandleAt(const Message& msg, sim::SimTime handled_at);

  sim::Simulator* sim_;
  Topology topology_;
  NetworkOptions options_;
  sim::Rng rng_;

  std::unordered_map<NodeId, Host*, NodeIdHash> hosts_;
  std::unordered_map<NodeId, sim::SimTime, NodeIdHash> nic_free_at_;
  std::unordered_map<NodeId, sim::SimTime, NodeIdHash> cpu_free_at_;
  std::map<std::pair<NodeId, NodeId>, sim::SimTime> pair_last_arrival_;
  std::unordered_set<NodeId, NodeIdHash> crashed_;
  std::unordered_set<SiteId> crashed_sites_;
  /// Directed partition edges: {from, to} present means traffic flowing
  /// from -> to is dropped. PartitionSites inserts both directions;
  /// PartitionOneWay inserts just one.
  std::set<std::pair<SiteId, SiteId>> partitions_;

  CounterSet counters_;
  /// Handle of this network's group in the process-wide metrics registry.
  int64_t metrics_handle_ = 0;
};

}  // namespace blockplane::net

#endif  // BLOCKPLANE_NET_NETWORK_H_
