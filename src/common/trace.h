// Deterministic causal tracing for the byzantizing pipeline.
//
// The paper's evaluation (Figs. 4-8) is a story about *where time goes*:
// intra-unit PBFT rounds vs. signature gathering vs. WAN hops vs.
// geo-mirroring. This module makes that decomposition measurable for a
// single commit instead of only in aggregate:
//
//   * Every API operation (log-commit / send / mirror-commit) gets a
//     TraceId. The id rides out-of-band on net::Message (it is simulator
//     metadata, never wire bytes, so protocol encodings are untouched) and
//     through the PBFT instance state, so one commit can be followed
//     request -> pre-prepare -> prepare -> commit -> attest -> transmit ->
//     geo-mirror -> deliver.
//
//   * Phase *marks* ("submit", "local_committed", "attested", ...) are
//     first-wins timestamps per trace. The latency breakdown is the vector
//     of deltas between consecutive marks, so the components sum EXACTLY to
//     the end-to-end time by construction (no residual bucket).
//
//   * Spans and instants export to the Chrome trace_event JSON format:
//     load the dump in chrome://tracing or https://ui.perfetto.dev and the
//     commit timeline is visible per (site, node) track.
//
// Determinism: the tracer is driven exclusively by simulator callbacks with
// explicit timestamps, allocates ids monotonically, and stores events in
// append order — so for a fixed seed the exported trace is bit-identical
// run to run (pinned by trace_test.cc's golden-trace test).
//
// Overhead: tracing is off by default. Every instrumentation site guards
// with `tracer().enabled()` — one function call and one predictable branch
// on the hot path, nothing else (no allocation, no map lookup). The
// acceptance gate in BENCH_hotpath.json holds with the instrumentation
// compiled in.
#ifndef BLOCKPLANE_COMMON_TRACE_H_
#define BLOCKPLANE_COMMON_TRACE_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/macros.h"

namespace blockplane {

/// Identifies one traced operation end to end. 0 = not traced.
using TraceId = uint64_t;
constexpr TraceId kNoTrace = 0;

/// One exported event. Names/categories are static string literals owned by
/// the instrumentation sites (never freed, never heap-allocated here).
struct TraceEvent {
  enum class Kind : uint8_t {
    kSpan,     // Chrome "X" (complete) event: [ts, ts+dur)
    kInstant,  // Chrome "i" event at ts
  };
  TraceId trace = kNoTrace;
  Kind kind = Kind::kInstant;
  int64_t ts = 0;   // sim nanoseconds
  int64_t dur = 0;  // span duration (kSpan only)
  const char* name = "";
  const char* cat = "";
  /// Track: Chrome pid = site, tid = node index within the site.
  int32_t site = -1;
  int32_t index = -1;
  /// Optional numeric argument (sequence number, log position, bytes...).
  uint64_t arg = 0;
};

/// The closed catalog of phase-mark names, in pipeline order. Every
/// Tracer::Mark() call site must use a name from this list and every name
/// here must have a call site — bplint rule BP006 checks both directions,
/// so a typo'd phase cannot silently truncate a latency breakdown and a
/// stale entry cannot linger after the instrumentation moves.
inline constexpr const char* kTracePhases[] = {
    "submit",            // client handed the request to the participant
    "local_committed",   // local PBFT group committed the record
    "attested",          // f_s+1 transmission attestations collected
    "transmitted",       // transmission record sent to the destination
    "remote_committed",  // destination group committed the received record
    "mirrored",          // geo layer mirrored the record (acting-site flow)
    "delivered",         // delivered to the destination application
    "done",              // terminal phase: end-to-end complete
};

/// One first-wins phase mark of a trace.
struct TraceMark {
  const char* phase = "";
  int64_t ts = 0;
};

/// One component of a latency breakdown: the gap between two consecutive
/// marks. Components are ordered and their durations sum exactly to
/// (last mark ts - first mark ts).
struct BreakdownComponent {
  std::string from;
  std::string to;
  int64_t dur = 0;  // sim nanoseconds
};

class Tracer {
 public:
  Tracer() = default;
  BP_DISALLOW_COPY_AND_ASSIGN(Tracer);

  bool enabled() const { return enabled_; }
  void Enable() { enabled_ = true; }
  void Disable() { enabled_ = false; }

  /// Drops all events, marks, and bindings and resets the id counter, so a
  /// fresh run over the same seed reproduces the same trace byte for byte.
  void Clear();

  /// Allocates a trace id (monotone). Returns kNoTrace while disabled, so
  /// disabled call sites propagate 0 and every downstream record/mark call
  /// early-returns.
  TraceId NewTrace();

  // --- raw events -----------------------------------------------------------

  void Span(TraceId trace, const char* name, const char* cat, int64_t ts_begin,
            int64_t ts_end, int32_t site, int32_t index, uint64_t arg = 0);
  void Instant(TraceId trace, const char* name, const char* cat, int64_t ts,
               int32_t site, int32_t index, uint64_t arg = 0);

  // --- phase marks / latency breakdown --------------------------------------

  /// Records `phase` at `ts` for `trace`, first call wins (several replicas
  /// or nodes may report the same milestone; the earliest is the one that
  /// advanced the commit). No-op when disabled or trace == kNoTrace.
  void Mark(TraceId trace, const char* phase, int64_t ts);

  /// The recorded marks of a trace in record order (timestamps are
  /// non-decreasing because simulation time is).
  const std::vector<TraceMark>& MarksFor(TraceId trace) const;

  /// Decomposes the trace's end-to-end time into per-phase components:
  /// component i is marks[i+1].ts - marks[i].ts. Sum == last - first.
  std::vector<BreakdownComponent> BreakdownFor(TraceId trace) const;

  /// Total end-to-end time of the trace (last mark - first mark), or 0.
  int64_t EndToEndFor(TraceId trace) const;

  // --- cross-layer correlation ----------------------------------------------

  /// Binds a committed communication record (src site, Local Log position)
  /// to its trace so the communication daemons — which only know log
  /// positions — and the destination site can tag transmit / remote-commit
  /// / deliver milestones without widening any wire format.
  void BindCommRecord(int32_t src_site, uint64_t log_pos, TraceId trace);
  TraceId LookupCommRecord(int32_t src_site, uint64_t log_pos) const;

  // --- export ----------------------------------------------------------------

  const std::vector<TraceEvent>& events() const { return events_; }
  /// Events recorded after the buffer cap was hit (and therefore dropped).
  int64_t events_dropped() const { return events_dropped_; }

  /// Chrome trace_event JSON ({"traceEvents": [...]}): load in
  /// chrome://tracing or Perfetto. ts/dur are microseconds (double), pid is
  /// the site, tid the node index.
  std::string ToChromeTrace() const;

  /// Compact machine-readable dump: per-trace marks and breakdowns.
  std::string ToJson() const;

  /// Writes ToChromeTrace() to `path`; returns false on I/O failure.
  bool WriteChromeTrace(const std::string& path) const;

 private:
  /// Hard cap so a runaway bench cannot balloon memory; deterministic
  /// because it only depends on the (deterministic) event sequence.
  static constexpr size_t kMaxEvents = 1u << 20;
  static constexpr size_t kMaxBindings = 1u << 16;

  bool enabled_ = false;
  TraceId next_trace_ = 1;
  std::vector<TraceEvent> events_;
  int64_t events_dropped_ = 0;
  std::map<TraceId, std::vector<TraceMark>> marks_;
  std::map<std::pair<int32_t, uint64_t>, TraceId> comm_bindings_;
};

/// The process-wide tracer (the simulator is single-threaded; one instance
/// serves every simulated node, which is exactly what makes cross-site
/// correlation free).
Tracer& tracer();

}  // namespace blockplane

#endif  // BLOCKPLANE_COMMON_TRACE_H_
