// Fixture: BP004 clean — either enumerate every message type or carry
// an explicit default; every enumerator is dispatched somewhere.
using MessageType = unsigned;

enum DemoMessageType : MessageType {
  kPing = 401,
  kPong = 402,
  kGapNotice = 403,
};

struct Message {
  MessageType type = 0;
};

void HandlePing(const Message& msg);
void HandlePong(const Message& msg);
void HandleGapNotice(const Message& msg);

void HandleMessage(const Message& msg) {
  switch (msg.type) {
    case kPing:
      HandlePing(msg);
      break;
    case kPong:
      HandlePong(msg);
      break;
    case kGapNotice:
      HandleGapNotice(msg);
      break;
  }
}

// A subset handler is fine with an explicit default: the type still
// has a home in HandleMessage above.
void HandlePingOnly(const Message& msg) {
  switch (msg.type) {
    case kPing:
      HandlePing(msg);
      break;
    default:
      break;  // not ours
  }
}
