#!/usr/bin/env bash
# Convenience wrapper around the bplint static-analysis suite.
#
#   scripts/lint.sh                lint src/ and bench/ (whole tree)
#   scripts/lint.sh --since-git    lint the whole tree, report only files
#                                  changed vs HEAD (analysis still spans
#                                  every file, so cross-file rules keep
#                                  their full view)
#   scripts/lint.sh --sarif out.sarif   also write a SARIF 2.1.0 report
#   scripts/lint.sh src/core       any bplint arguments pass through
#
# Parallel analysis is on by default (one worker per core); the engine
# guarantees byte-identical output to a serial run, which check.sh pass
# 4b re-verifies on every merge.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 4)"

if [[ "$#" -gt 0 && "${1:0:1}" != "-" ]]; then
  exec python3 scripts/bplint --jobs "$JOBS" "$@"
fi
# Paths go first: --since-git takes an optional REF, so a path right
# after it would be parsed as the ref (use --since-git=REF to be safe).
exec python3 scripts/bplint src bench --jobs "$JOBS" "$@"
