// Transitive fixture group: bp007. This file never mentions RunPrologue
// or any other Runner trigger, so by itself it is out of BP007 scope
// and lints clean. In the group, submit.cc's prologue lambda calls
// DecodeAndCount, which calls Bump — so this file's code runs on
// worker threads and its mutable static becomes a data race.

int Bump() {
  static int calls = 0;  // BP007 via the group only: workers race here
  return ++calls;
}

int DecodeAndCount(int bytes) {
  Bump();
  return bytes / 16;
}
