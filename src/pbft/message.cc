#include "pbft/message.h"

#include "crypto/sha256.h"

namespace blockplane::pbft {

namespace {

void PutDigest(Encoder* enc, const Digest& d) {
  enc->PutRaw(d.data(), d.size());
}

Status GetDigest(Decoder* dec, Digest* d) {
  for (auto& byte : *d) {
    BP_RETURN_NOT_OK(dec->GetU8(&byte));
  }
  return Status::OK();
}

}  // namespace

uint64_t ClientToken(net::NodeId id) {
  return (static_cast<uint64_t>(static_cast<uint32_t>(id.site)) << 32) |
         static_cast<uint32_t>(id.index);
}

net::NodeId ClientFromToken(uint64_t token) {
  return net::NodeId{static_cast<int32_t>(token >> 32),
                     static_cast<int32_t>(token & 0xffffffffu)};
}

Digest ComputeDigest(const Bytes& value, bool crypto_hash) {
  if (crypto_hash) return crypto::Sha256Digest(value);
  // Bench mode: two interleaved FNV-1a streams -> 128-bit fingerprint.
  uint64_t h1 = 0xcbf29ce484222325ULL;
  uint64_t h2 = 0x84222325cbf29ce4ULL;
  for (uint8_t b : value) {
    h1 = (h1 ^ b) * 0x100000001b3ULL;
    h2 = (h2 ^ (b + 0x9e)) * 0x100000001b3ULL;
  }
  Digest d{};
  for (int i = 0; i < 8; ++i) {
    d[i] = static_cast<uint8_t>(h1 >> (8 * i));
    d[8 + i] = static_cast<uint8_t>(h2 >> (8 * i));
  }
  uint64_t len = value.size();
  for (int i = 0; i < 8; ++i) d[16 + i] = static_cast<uint8_t>(len >> (8 * i));
  return d;
}

// --- RequestMsg --------------------------------------------------------------

Bytes RequestMsg::Encode() const {
  Encoder enc;
  enc.PutU64(client_token);
  enc.PutU64(req_id);
  enc.PutBytes(value);
  return enc.Take();
}

Status RequestMsg::Decode(const Bytes& buf, RequestMsg* out) {
  Decoder dec(buf);
  BP_RETURN_NOT_OK(dec.GetU64(&out->client_token));
  BP_RETURN_NOT_OK(dec.GetU64(&out->req_id));
  BP_RETURN_NOT_OK(dec.GetBytes(&out->value));
  return Status::OK();
}

// --- PrePrepareMsg -----------------------------------------------------------

Bytes PrePrepareMsg::CanonicalHeader() const {
  Encoder enc;
  enc.PutU8(static_cast<uint8_t>(kPrePrepare));
  enc.PutU64(view);
  enc.PutU64(seq);
  PutDigest(&enc, digest);
  enc.PutU64(client_token);
  enc.PutU64(req_id);
  return enc.Take();
}

Bytes PrePrepareMsg::Encode() const {
  Encoder enc;
  enc.PutU64(view);
  enc.PutU64(seq);
  PutDigest(&enc, digest);
  enc.PutU64(client_token);
  enc.PutU64(req_id);
  crypto::EncodeSignature(&enc, sig);
  enc.PutBytes(value);
  return enc.Take();
}

Status PrePrepareMsg::Decode(const Bytes& buf, PrePrepareMsg* out) {
  Decoder dec(buf);
  BP_RETURN_NOT_OK(dec.GetU64(&out->view));
  BP_RETURN_NOT_OK(dec.GetU64(&out->seq));
  BP_RETURN_NOT_OK(GetDigest(&dec, &out->digest));
  BP_RETURN_NOT_OK(dec.GetU64(&out->client_token));
  BP_RETURN_NOT_OK(dec.GetU64(&out->req_id));
  BP_RETURN_NOT_OK(crypto::DecodeSignature(&dec, &out->sig));
  BP_RETURN_NOT_OK(dec.GetBytes(&out->value));
  return Status::OK();
}

// --- VoteMsg -----------------------------------------------------------------

Bytes VoteMsg::CanonicalBody() const {
  Encoder enc;
  enc.PutU8(static_cast<uint8_t>(type));
  enc.PutU64(view);
  enc.PutU64(seq);
  PutDigest(&enc, digest);
  return enc.Take();
}

Bytes VoteMsg::Encode() const {
  Encoder enc;
  enc.PutU64(view);
  enc.PutU64(seq);
  PutDigest(&enc, digest);
  crypto::EncodeSignature(&enc, sig);
  return enc.Take();
}

Status VoteMsg::Decode(PbftMessageType type, const Bytes& buf, VoteMsg* out) {
  out->type = type;
  Decoder dec(buf);
  BP_RETURN_NOT_OK(dec.GetU64(&out->view));
  BP_RETURN_NOT_OK(dec.GetU64(&out->seq));
  BP_RETURN_NOT_OK(GetDigest(&dec, &out->digest));
  BP_RETURN_NOT_OK(crypto::DecodeSignature(&dec, &out->sig));
  return Status::OK();
}

// --- ReplyMsg ----------------------------------------------------------------

Bytes ReplyMsg::Encode() const {
  Encoder enc;
  enc.PutU64(view);
  enc.PutU64(req_id);
  enc.PutU64(seq);
  enc.PutU32(static_cast<uint32_t>(replica));
  PutDigest(&enc, result_digest);
  return enc.Take();
}

Status ReplyMsg::Decode(const Bytes& buf, ReplyMsg* out) {
  Decoder dec(buf);
  BP_RETURN_NOT_OK(dec.GetU64(&out->view));
  BP_RETURN_NOT_OK(dec.GetU64(&out->req_id));
  BP_RETURN_NOT_OK(dec.GetU64(&out->seq));
  uint32_t replica = 0;
  BP_RETURN_NOT_OK(dec.GetU32(&replica));
  out->replica = static_cast<int32_t>(replica);
  BP_RETURN_NOT_OK(GetDigest(&dec, &out->result_digest));
  return Status::OK();
}

// --- CheckpointMsg -----------------------------------------------------------

Bytes CheckpointMsg::CanonicalBody() const {
  Encoder enc;
  enc.PutU8(static_cast<uint8_t>(kCheckpoint));
  enc.PutU64(seq);
  PutDigest(&enc, state_digest);
  return enc.Take();
}

Bytes CheckpointMsg::Encode() const {
  Encoder enc;
  enc.PutU64(seq);
  PutDigest(&enc, state_digest);
  crypto::EncodeSignature(&enc, sig);
  return enc.Take();
}

Status CheckpointMsg::Decode(const Bytes& buf, CheckpointMsg* out) {
  Decoder dec(buf);
  BP_RETURN_NOT_OK(dec.GetU64(&out->seq));
  BP_RETURN_NOT_OK(GetDigest(&dec, &out->state_digest));
  BP_RETURN_NOT_OK(crypto::DecodeSignature(&dec, &out->sig));
  return Status::OK();
}

// --- PreparedProof -----------------------------------------------------------

void PreparedProof::EncodeTo(Encoder* enc) const {
  enc->PutU64(view);
  enc->PutU64(seq);
  PutDigest(enc, digest);
  enc->PutU64(client_token);
  enc->PutU64(req_id);
  enc->PutBytes(value);
  crypto::EncodeSignature(enc, preprepare_sig);
  crypto::EncodeProof(enc, prepare_sigs);
}

Status PreparedProof::DecodeFrom(Decoder* dec, PreparedProof* out) {
  BP_RETURN_NOT_OK(dec->GetU64(&out->view));
  BP_RETURN_NOT_OK(dec->GetU64(&out->seq));
  BP_RETURN_NOT_OK(GetDigest(dec, &out->digest));
  BP_RETURN_NOT_OK(dec->GetU64(&out->client_token));
  BP_RETURN_NOT_OK(dec->GetU64(&out->req_id));
  BP_RETURN_NOT_OK(dec->GetBytes(&out->value));
  BP_RETURN_NOT_OK(crypto::DecodeSignature(dec, &out->preprepare_sig));
  BP_RETURN_NOT_OK(crypto::DecodeProof(dec, &out->prepare_sigs));
  return Status::OK();
}

// --- FetchCommittedMsg / CommittedEntryMsg ------------------------------------

Bytes FetchCommittedMsg::Encode() const {
  Encoder enc;
  enc.PutU64(from_seq);
  return enc.Take();
}

Status FetchCommittedMsg::Decode(const Bytes& buf, FetchCommittedMsg* out) {
  Decoder dec(buf);
  return dec.GetU64(&out->from_seq);
}

Bytes CommittedEntryMsg::Encode() const {
  Encoder enc;
  enc.PutU64(seq);
  enc.PutU64(view);
  PutDigest(&enc, digest);
  enc.PutU64(client_token);
  enc.PutU64(req_id);
  enc.PutBytes(value);
  crypto::EncodeProof(&enc, commit_sigs);
  return enc.Take();
}

Status CommittedEntryMsg::Decode(const Bytes& buf, CommittedEntryMsg* out) {
  Decoder dec(buf);
  BP_RETURN_NOT_OK(dec.GetU64(&out->seq));
  BP_RETURN_NOT_OK(dec.GetU64(&out->view));
  BP_RETURN_NOT_OK(GetDigest(&dec, &out->digest));
  BP_RETURN_NOT_OK(dec.GetU64(&out->client_token));
  BP_RETURN_NOT_OK(dec.GetU64(&out->req_id));
  BP_RETURN_NOT_OK(dec.GetBytes(&out->value));
  BP_RETURN_NOT_OK(crypto::DecodeProof(&dec, &out->commit_sigs));
  return Status::OK();
}

// --- SnapshotMsg --------------------------------------------------------------

Bytes SnapshotMsg::Encode() const {
  Encoder enc;
  enc.PutU64(seq);
  PutDigest(&enc, state_digest);
  crypto::EncodeProof(&enc, cert);
  return enc.Take();
}

Status SnapshotMsg::Decode(const Bytes& buf, SnapshotMsg* out) {
  Decoder dec(buf);
  BP_RETURN_NOT_OK(dec.GetU64(&out->seq));
  BP_RETURN_NOT_OK(GetDigest(&dec, &out->state_digest));
  return crypto::DecodeProof(&dec, &out->cert);
}

// --- ViewChangeMsg -----------------------------------------------------------

Bytes ViewChangeMsg::CanonicalBody() const {
  Encoder enc;
  enc.PutU8(static_cast<uint8_t>(kViewChange));
  enc.PutU64(new_view);
  enc.PutU64(last_stable);
  return enc.Take();
}

Bytes ViewChangeMsg::Encode() const {
  Encoder enc;
  enc.PutU64(new_view);
  enc.PutU64(last_stable);
  enc.PutVarint(prepared.size());
  for (const PreparedProof& p : prepared) p.EncodeTo(&enc);
  crypto::EncodeSignature(&enc, sig);
  return enc.Take();
}

Status ViewChangeMsg::Decode(const Bytes& buf, ViewChangeMsg* out) {
  Decoder dec(buf);
  BP_RETURN_NOT_OK(dec.GetU64(&out->new_view));
  BP_RETURN_NOT_OK(dec.GetU64(&out->last_stable));
  uint64_t n = 0;
  BP_RETURN_NOT_OK(dec.GetVarint(&n));
  if (n > 100000) return Status::Corruption("oversized view-change");
  out->prepared.clear();
  for (uint64_t i = 0; i < n; ++i) {
    PreparedProof p;
    BP_RETURN_NOT_OK(PreparedProof::DecodeFrom(&dec, &p));
    out->prepared.push_back(std::move(p));
  }
  BP_RETURN_NOT_OK(crypto::DecodeSignature(&dec, &out->sig));
  return Status::OK();
}

// --- NewViewMsg --------------------------------------------------------------

Bytes NewViewMsg::CanonicalBody() const {
  Encoder inner;
  inner.PutVarint(view_changes.size());
  for (const Bytes& vc : view_changes) inner.PutBytes(vc);
  Digest set_digest = crypto::Sha256Digest(inner.buffer());

  Encoder enc;
  enc.PutU8(static_cast<uint8_t>(kNewView));
  enc.PutU64(view);
  PutDigest(&enc, set_digest);
  return enc.Take();
}

Bytes NewViewMsg::Encode() const {
  Encoder enc;
  enc.PutU64(view);
  enc.PutVarint(view_changes.size());
  for (const Bytes& vc : view_changes) enc.PutBytes(vc);
  crypto::EncodeSignature(&enc, sig);
  return enc.Take();
}

Status NewViewMsg::Decode(const Bytes& buf, NewViewMsg* out) {
  Decoder dec(buf);
  BP_RETURN_NOT_OK(dec.GetU64(&out->view));
  uint64_t n = 0;
  BP_RETURN_NOT_OK(dec.GetVarint(&n));
  if (n > 10000) return Status::Corruption("oversized new-view");
  out->view_changes.clear();
  for (uint64_t i = 0; i < n; ++i) {
    Bytes vc;
    BP_RETURN_NOT_OK(dec.GetBytes(&vc));
    out->view_changes.push_back(std::move(vc));
  }
  BP_RETURN_NOT_OK(crypto::DecodeSignature(&dec, &out->sig));
  return Status::OK();
}

}  // namespace blockplane::pbft
