// bplint:wire-coverage — every field below must appear in Encode,
// Decode, and (where a digest exists) the digest path (BP003).
// Quorum certificates: one compact, canonically-encoded certificate in
// place of an f_i+1 signature vector (DESIGN.md §14).
//
// A transmission record today carries f_i+1 individual HMAC signatures;
// every hop re-walks the vector and re-checks each entry. A QuorumCert
// compresses the vector into
//
//   * the site whose nodes signed,
//   * a sorted signer bitmap (bit k set = node index k contributed), and
//   * one aggregated digest over the constituent MACs in ascending
//     signer-index order.
//
// The bitmap makes duplicate signers *unrepresentable* (a bit cannot be
// set twice), the aggregate binds every MAC byte-for-byte, and the whole
// certificate costs 48 wire bytes where the f_i+1 vector costs 40 bytes
// per signature. Verification recomputes each listed signer's MAC from
// the shared KeyStore and compares the aggregate — once; repeats hit the
// KeyStore's digest-keyed cert cache (see KeyStore::VerifyCert).
#ifndef BLOCKPLANE_CRYPTO_QUORUM_CERT_H_
#define BLOCKPLANE_CRYPTO_QUORUM_CERT_H_

#include <vector>

#include "common/codec.h"
#include "common/status.h"
#include "crypto/signer.h"
#include "net/node_id.h"

namespace blockplane::crypto {

/// A compact certificate: `signer_bits` distinct nodes of `site` signed
/// one canonical message, and `agg` is SHA-256 over their MACs in
/// ascending signer-index order.
struct QuorumCert {
  net::SiteId site = -1;
  /// The node index bit 0 maps to. Signer groups are dense but not always
  /// zero-based: unit nodes are 0..3f_i, while mirror groups occupy a
  /// disjoint range per mirrored origin (100*(origin+1)+k). The base keeps
  /// the bitmap 64 bits regardless of where the group sits.
  int32_t index_base = 0;
  /// Bit k set = node index `index_base + k` of `site` contributed its
  /// MAC. A group is 3f_i+1 nodes, so 64 bits is plenty; signers further
  /// than 64 from the base cannot be certified and fall back to vectors.
  uint64_t signer_bits = 0;
  /// SHA-256 over the constituent MACs, ascending signer index.
  Digest agg{};

  /// Number of distinct signers (popcount of the bitmap).
  int signer_count() const;

  /// Wire codec (BP003-covered: every field above rides both paths).
  void EncodeTo(Encoder* enc) const;
  Status DecodeFrom(Decoder* dec);

  friend bool operator==(const QuorumCert& a, const QuorumCert& b) {
    return a.site == b.site && a.index_base == b.index_base &&
           a.signer_bits == b.signer_bits && a.agg == b.agg;
  }
};

/// Builds the certificate aggregating `sigs` (all signatures whose signer
/// belongs to `site`; other sites' entries and out-of-range indices are
/// ignored, duplicates keep the first occurrence). The constituent MACs
/// are assumed verified by the caller — honest builders aggregate only
/// signatures they collected and checked themselves.
QuorumCert BuildQuorumCert(net::SiteId site,
                           const std::vector<Signature>& sigs);

/// Wire helpers for cert lists, mirroring EncodeProof/DecodeProof.
void EncodeCertList(Encoder* enc, const std::vector<QuorumCert>& certs);
Status DecodeCertList(Decoder* dec, std::vector<QuorumCert>* out);

}  // namespace blockplane::crypto

#endif  // BLOCKPLANE_CRYPTO_QUORUM_CERT_H_
