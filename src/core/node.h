// A Blockplane node: one of the 3f_i+1 machines a participant runs
// (§III-B). Each node hosts
//
//   * a PBFT replica of the participant's Local Log (the local-commit
//     engine of §IV-B), with the verification-routine hook wired in,
//   * a full copy of the Local Log plus the reception bookkeeping used by
//     the built-in receive verification routine (§IV-C),
//   * the attestation service that signs transmission records and
//     geo-replication requests on behalf of the unit,
//   * the delivery path that turns committed received-records into
//     reception-buffer entries and notifies the participant process.
//
// The same class also hosts *mirror* logs (§V): a node whose `origin_site`
// differs from its own site replicates another participant's Local Log for
// geo-correlated fault tolerance and answers geo-replication requests with
// geo-acks instead of delivery notices.
#ifndef BLOCKPLANE_CORE_NODE_H_
#define BLOCKPLANE_CORE_NODE_H_

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <unordered_map>
#include <vector>

#include "core/options.h"
#include "core/record.h"
#include "crypto/signer.h"
#include "net/network.h"
#include "pbft/replica.h"

namespace blockplane::core {

class CommDaemon;
class WindowController;

/// The network address of a site's participant (user-space) process.
net::NodeId ParticipantNodeId(net::SiteId site);

/// The address of node `index` in the mirror group replicating
/// `origin_site`'s log at `host_site` (§V).
net::NodeId MirrorNodeId(net::SiteId host_site, net::SiteId origin_site,
                         int index);

/// Per-node user verification routine (§III-C): attests that a record is a
/// valid state transition given this node's replica of the protocol state.
using VerifyRoutine = std::function<bool(const LogRecord&)>;

/// Per-node apply hook: lets a protocol replica (or test) observe every
/// Local Log append in order.
using ApplyHook = std::function<void(uint64_t pos, const LogRecord&)>;

class BlockplaneNode : public net::Host {
 public:
  /// `group` is the PBFT group replicating this log; `origin_site` is the
  /// participant whose Local Log this is (== self.site for a unit node,
  /// different for a mirror).
  BlockplaneNode(net::Network* network, crypto::KeyStore* keys,
                 const BlockplaneOptions& options, pbft::PbftConfig group,
                 net::NodeId self, net::SiteId origin_site);
  ~BlockplaneNode() override;
  BP_DISALLOW_COPY_AND_ASSIGN(BlockplaneNode);

  void HandleMessage(const net::Message& msg) override;

  /// Registers the user verification routine for `routine_id`. Routine 0 is
  /// reserved (accept-all default).
  void RegisterVerifier(uint64_t routine_id, VerifyRoutine routine);
  void SetApplyHook(ApplyHook hook) { apply_hook_ = std::move(hook); }

  /// Submits a record for local commit with this node acting as the client
  /// (used by receive and geo-replication paths).
  void SubmitLocalCommit(const LogRecord& record);
  /// SubmitLocalCommit with an explicit request id and optional broadcast
  /// to every unit replica (escalation path for censored/stuck requests).
  void SubmitRequest(const LogRecord& record, uint64_t req_id,
                     bool broadcast);

  /// Starts the communication daemon for `dest` on this node. `reserve`
  /// daemons stay passive until they detect a delivery gap (§IV-C).
  void StartCommDaemon(net::SiteId dest, bool reserve);

  /// Mirror role only: the other host sites mirroring the same origin.
  /// Peer mirrors are the fetch targets for gap backfill (§V, DESIGN.md
  /// §10): after an outage, the geo stream has moved past this group, and
  /// the missing positions can only come from a mirror that has them.
  void SetMirrorPeerHosts(std::vector<net::SiteId> hosts) {
    mirror_peer_hosts_ = std::move(hosts);
  }

  /// §VI-B: after an outage, "the replica reads the state of the Local Log
  /// from other nodes to catch up with the current state". Call once the
  /// network declares this node recovered.
  void Recover() {
    replica_->CatchUp();
    // If the outage outlived the checkpoint window, plain catch-up cannot
    // find the entries anymore; a certified snapshot can.
    replica_->RequestSnapshot();
  }

  /// Makes this node's daemons stop transmitting (byzantine test hook: a
  /// malicious daemon that pretends to send).
  void MuteDaemons();

  net::NodeId self() const { return self_; }
  net::SiteId origin_site() const { return origin_site_; }
  bool is_mirror() const { return origin_site_ != self_.site; }
  pbft::PbftReplica* replica() { return replica_.get(); }
  const BlockplaneOptions& options() const { return options_; }
  crypto::KeyStore* keys() const { return keys_; }
  net::Network* network() const { return network_; }
  /// The parallel-runtime seam this node routes message prologues through
  /// (DESIGN.md §12). Never null: options.runner, or the process-wide
  /// InlineRunner.
  common::Runner* runner() const { return runner_; }

  /// The node's copy of the Local Log, 1-based by position.
  const std::map<uint64_t, LogRecord>& log() const { return log_; }
  uint64_t log_size() const { return log_.empty() ? 0 : log_.rbegin()->first; }
  /// Rolling digest chain over applied values (invariant checking).
  const crypto::Digest& chain_digest() const { return chain_digest_; }
  /// Highest log position applied to this node's derived state.
  uint64_t applied_high() const { return applied_high_; }
  /// Number of API records released into the geo stream (== the geo
  /// position of the latest contiguously-applied API record when fg > 0).
  uint64_t api_record_count() const { return api_record_count_; }
  /// API records currently quarantined awaiting gap fill (DESIGN.md §10).
  size_t quarantined_api_records() const { return geo_quarantine_.size(); }
  /// Highest source-log position received (and committed) from `src`.
  uint64_t last_received_pos(net::SiteId src) const;
  /// Number of communication records to `dest` in the log.
  uint64_t comm_records_to(net::SiteId dest) const;
  /// Highest source-log position this node's daemon for `dest` has seen
  /// acknowledged by f_i+1 destination nodes (0 if no daemon here).
  uint64_t daemon_acked(net::SiteId dest) const;

  /// Byzantine test hooks.
  void SetByzantineMode(pbft::ByzantineMode mode) {
    replica_->SetByzantineMode(mode);
  }
  void RefuseAttestations() { refuse_attestations_ = true; }
  /// Makes this node inflate its reception watermark in status replies
  /// (an attack on the daemon-reserve gap detection, §IV-C).
  void LieAboutReception() { lie_about_reception_ = true; }
  /// Makes this node answer read requests with corrupted records (shows
  /// why read-1 trusts a single node while quorum reads do not, §VI-A).
  void LieOnReads() { lie_on_reads_ = true; }

 private:
  friend class CommDaemon;

  // -- PBFT hooks --
  bool VerifyValue(const Bytes& value);
  /// Leader-side admission check for the pipelined proposal window
  /// (DESIGN.md §9): judges a candidate value against a *projected* state
  /// that assumes every earlier admitted value commits, and advances the
  /// projection on success. At window 1 this degenerates to VerifyValue.
  bool AdmitValue(const Bytes& value);
  /// Re-bases the admission projection on applied state (called by the
  /// replica on view entry / checkpoint install before replaying the
  /// in-flight values through AdmitValue).
  void ResetAdmission();
  void OnExecute(uint64_t seq, const Bytes& value);
  /// Applies a committed value to this node's Local Log copy and derived
  /// state (used by both normal execution and log sync).
  void ApplyValue(uint64_t seq, const Bytes& value);

  // -- recovery past the checkpoint window (§VI-B) --
  void OnSnapshotCertificate(const pbft::SnapshotMsg& snapshot);
  void OnLogSyncRequest(const net::Message& msg);
  void OnLogSyncReply(const net::Message& msg);
  void TryInstallSyncedLog();

  /// Commit-time geo-contiguity gate for API records (DESIGN.md §10,
  /// quarantine-and-gap-fill). Returns true when the record may enter the
  /// api stream now; false when it was quarantined (side effects deferred
  /// until the gap fills) or dropped (stale duplicate / absurd position).
  bool AdmitApiRecord(uint64_t seq, const LogRecord& record);
  /// Api-stream side effects of an applied API record: api position
  /// assignment, communication-stream bookkeeping, daemon notification.
  void ApplyApiRecord(uint64_t seq, RecordType type, net::SiteId dest_site,
                      uint64_t geo_pos);
  /// Releases quarantined records whose geo positions became contiguous.
  void ReleaseQuarantineContiguous();

  /// The built-in receive verification routine (§IV-C).
  bool VerifyReceived(const LogRecord& record) const;
  /// VerifyReceived with an explicit reception watermark, so the admission
  /// projection can run the same checks against projected state.
  bool VerifyReceivedAt(const LogRecord& record, uint64_t last) const;
  /// Verification for mirror-log entries (§V).
  bool VerifyMirrored(const LogRecord& record) const;
  /// The stateless (proof-only) part of VerifyMirrored, shared with the
  /// admission projection.
  bool VerifyMirroredProof(const LogRecord& record) const;
  /// Position of the last communication record to `dest` before `pos`.
  uint64_t PrevCommPos(net::SiteId dest, uint64_t pos) const;

  // -- message handlers --
  /// Non-hot-path messages: the old HandleMessage switch body, reached
  /// through a pass-through prologue so threaded epilogues still retire in
  /// delivery order (DESIGN.md §12).
  void DispatchSerial(const net::Message& msg);
  /// Hot-path prologues: decode (and digest) off the delivery thread.
  common::Runner::Prologue PrologueTransmission(net::Message msg);
  common::Runner::Prologue PrologueAttestResponse(net::Message msg);
  /// Epilogue of a decoded kTransmission: the state-touching tail of the
  /// seed's OnTransmission.
  void OnTransmissionDecoded(net::NodeId src, TransmissionRecord tr);
  void OnAttestRequest(const net::Message& msg);
  void OnRecvStatusQuery(const net::Message& msg);
  void OnGeoReplicate(const net::Message& msg);
  void OnGeoProofBundle(const net::Message& msg);

  // -- mirror gap backfill (§V, DESIGN.md §10) --
  /// A fetched (or ahead-of-stream replicated) mirror entry arrived:
  /// buffer it and drain whatever became contiguous.
  void OnMirrorEntry(const net::Message& msg);
  /// Rate-limited, leader-only kMirrorFetch fan-out to the peer mirror
  /// hosts for the positions between `mirror_high_pos_` and
  /// `target_geo_pos`.
  void MaybeFetchMirrorGap(uint64_t target_geo_pos);
  /// Submits buffered backfill entries that extend the mirror log
  /// contiguously; admission re-verifies every proof.
  void DrainMirrorBackfill();

  void SendTo(net::NodeId dst, net::MessageType type, Bytes payload);

  net::Network* network_;
  sim::Simulator* sim_;
  crypto::KeyStore* keys_;
  std::unique_ptr<crypto::Signer> signer_;
  BlockplaneOptions options_;
  /// options_.runner, or the process-wide InlineRunner. Never null.
  common::Runner* runner_;
  net::NodeId self_;
  net::SiteId origin_site_;

  /// Adaptive PBFT proposal-window controller (DESIGN.md §13); non-null
  /// only when options_.congestion.adaptive. Declared before replica_ so
  /// it outlives the replica whose config hooks call into it.
  std::unique_ptr<WindowController> pbft_window_ctl_;
  std::unique_ptr<pbft::PbftReplica> replica_;
  std::map<uint64_t, LogRecord> log_;
  std::unordered_map<uint64_t, VerifyRoutine> verifiers_;
  ApplyHook apply_hook_;

  /// Reception bookkeeping per source site.
  std::unordered_map<net::SiteId, uint64_t> last_received_pos_;
  /// Communication records per destination (positions, in order).
  std::unordered_map<net::SiteId, std::vector<uint64_t>> comm_positions_;
  /// Geo proofs attached by the participant, by log position.
  std::unordered_map<uint64_t, std::vector<crypto::Signature>> geo_proofs_;
  /// Wire v2 (qc.enabled): per-mirror-site certificates delivered alongside
  /// (or in place of) the geo proofs, keyed the same way.
  std::unordered_map<uint64_t, std::vector<crypto::QuorumCert>>
      geo_proof_certs_;

  /// Count of API records (log-commit + communication) executed so far —
  /// the geo-replication stream position of the latest API record.
  uint64_t api_record_count_ = 0;
  std::unordered_map<uint64_t, uint64_t> api_pos_by_log_pos_;

  /// Quarantined API records (geo_pos -> where/what), waiting for the geo
  /// stream to become contiguous again (DESIGN.md §10). Only populated on
  /// non-mirror nodes with fg > 0 under a byzantine geo-reordering leader;
  /// empty in every honest execution.
  struct QuarantinedApi {
    uint64_t seq = 0;
    RecordType type = RecordType::kLogCommit;
    net::SiteId dest_site = -1;
  };
  std::map<uint64_t, QuarantinedApi> geo_quarantine_;
  /// Maximum distance past the contiguous head a quarantined geo position
  /// may sit; anything further is byzantine garbage and is dropped from the
  /// api stream (its log entry and digest chain are unaffected).
  static constexpr uint64_t kGeoQuarantineSpan = 4096;

  /// Leader-side admission projection (DESIGN.md §9): what the applied
  /// state will look like once every admitted-but-unexecuted value commits.
  /// Floored at applied state on every admission (values can commit through
  /// paths the projection never saw, e.g. catch-up or other leaders' terms)
  /// and re-based by ResetAdmission on view entry / checkpoint install.
  uint64_t adm_api_count_ = 0;
  uint64_t adm_mirror_high_ = 0;
  std::unordered_map<net::SiteId, uint64_t> adm_last_received_;

  /// Mirror role: high watermark of the mirror log and the digest of each
  /// mirrored entry (for re-acks and attestations).
  uint64_t mirror_high_pos_ = 0;
  std::map<uint64_t, crypto::Digest> mirror_digest_by_pos_;

  /// Mirror gap backfill (§V, DESIGN.md §10). After an outage the geo
  /// stream has moved on; replicates for positions ahead of
  /// `mirror_high_pos_ + 1` cannot be admitted (mirror logs commit
  /// strictly in geo order), so they are buffered here while the group
  /// leader fetches the hole from a peer mirror. Proof-checked on entry;
  /// re-verified in full at admission.
  std::vector<net::SiteId> mirror_peer_hosts_;
  std::map<uint64_t, LogRecord> mirror_backfill_;
  /// Highest backfill position already submitted for commit (re-based on
  /// the applied watermark at each fetch, so lost submissions are retried).
  uint64_t mirror_backfill_submitted_ = 0;
  /// Highest geo position observed in a replicate — the backfill target.
  uint64_t mirror_gap_target_ = 0;
  sim::SimTime last_mirror_gap_fetch_ = 0;
  static constexpr size_t kMirrorBackfillCap = 4096;

  /// Nodes awaiting an ack for a transmission: (src, src_pos) -> requesters.
  std::map<std::pair<net::SiteId, uint64_t>, std::set<net::NodeId>>
      pending_acks_;

  /// Re-submission bookkeeping for received transmissions. The sender's
  /// retransmissions re-enter OnTransmissionDecoded; each pass re-submits
  /// the record, and after repeated attempts without a commit the request
  /// escalates from the leader alone to the whole unit, so the backups'
  /// request watchdogs can evict a leader whose lagging execution makes it
  /// reject the (valid) chain pointer forever. The req_id is reused across
  /// attempts so replicas dedup the watch instead of stacking watchdogs.
  struct RecvSubmit {
    uint64_t req_id = 0;
    int attempts = 0;
  };
  std::map<std::pair<net::SiteId, uint64_t>, RecvSubmit> recv_submits_;

  /// Running digest chain over applied values — mirrors the PBFT replica's
  /// state digest, so synced log contents can be verified against a
  /// certified checkpoint digest.
  crypto::Digest chain_digest_{};
  uint64_t applied_high_ = 0;

  /// Pending snapshot-driven log sync.
  uint64_t sync_target_seq_ = 0;
  crypto::Digest sync_target_digest_{};
  std::map<uint64_t, Bytes> sync_buffer_;  // pos -> committed value bytes

  uint64_t next_req_id_ = 1;
  bool refuse_attestations_ = false;
  bool lie_about_reception_ = false;
  bool lie_on_reads_ = false;

  std::vector<std::unique_ptr<CommDaemon>> daemons_;
};

}  // namespace blockplane::core

#endif  // BLOCKPLANE_CORE_NODE_H_
