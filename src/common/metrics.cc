#include "common/metrics.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/macros.h"

namespace blockplane {

HotPathStats& hotpath_stats() {
  static HotPathStats stats;
  return stats;
}

void Histogram::Add(double value) {
  samples_.push_back(value);
  sorted_ = false;
}

void Histogram::Clear() {
  samples_.clear();
  sorted_ = true;
}

void Histogram::EnsureSorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double Histogram::Mean() const {
  if (samples_.empty()) return 0.0;
  double sum = 0.0;
  for (double v : samples_) sum += v;
  return sum / static_cast<double>(samples_.size());
}

double Histogram::Min() const {
  if (samples_.empty()) return 0.0;
  EnsureSorted();
  return samples_.front();
}

double Histogram::Max() const {
  if (samples_.empty()) return 0.0;
  EnsureSorted();
  return samples_.back();
}

double Histogram::Stddev() const {
  if (samples_.size() < 2) return 0.0;
  double mean = Mean();
  double acc = 0.0;
  for (double v : samples_) acc += (v - mean) * (v - mean);
  return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
}

double Histogram::Percentile(double p) const {
  if (samples_.empty()) return 0.0;
  BP_CHECK(p >= 0.0 && p <= 100.0);
  EnsureSorted();
  if (p <= 0.0) return samples_.front();
  size_t rank = static_cast<size_t>(
      std::ceil(p / 100.0 * static_cast<double>(samples_.size())));
  if (rank == 0) rank = 1;
  return samples_[rank - 1];
}

}  // namespace blockplane
