// bplint:wire-coverage — every field below must appear in Encode,
// Decode, and (where a digest exists) the digest path (BP003).
// The Local Log record model (§III-B of the paper) and the transmission
// records exchanged between participants (§IV-C).
//
// A participant's Local Log L_i holds two kinds of events written by the
// user-level interface — log-commit records and communication records —
// plus received records representing transmission records committed on the
// receiving side.
#ifndef BLOCKPLANE_CORE_RECORD_H_
#define BLOCKPLANE_CORE_RECORD_H_

#include <vector>

#include "common/codec.h"
#include "common/status.h"
#include "crypto/quorum_cert.h"
#include "crypto/sha256.h"
#include "crypto/signer.h"
#include "net/message.h"
#include "net/node_id.h"

namespace blockplane::core {

/// Core-layer network message types (the PBFT module owns 101..110).
enum CoreMessageType : net::MessageType {
  kTransmission = 201,
  kTransmissionAck = 202,
  kAttestRequest = 203,
  kAttestResponse = 204,
  kDeliverNotice = 205,
  kRecvStatusQuery = 206,
  kRecvStatusReply = 207,
  kGeoReplicate = 208,
  kGeoAck = 209,
  kGeoProofBundle = 210,
  kReadRequest = 211,
  kReadReply = 212,
  kMirrorFetch = 213,
  kMirrorEntry = 214,
  kLogSyncRequest = 215,
  kLogSyncReply = 216,
  /// Unit node -> own participant: an API record committed with a geo
  /// position ahead of the contiguous stream and was quarantined; the
  /// participant should nudge its pending submissions to fill the gap
  /// (byzantine-leader geo-reorder defense, DESIGN.md §10).
  kGeoGapNotice = 217,
};

/// The paper's record-type annotation (§IV-B: "every value has a type
/// annotation that represents the type of the record").
enum class RecordType : uint8_t {
  kLogCommit = 1,      // a state change persisted via log-commit
  kCommunication = 2,  // an outgoing message written via send
  kReceived = 3,       // a transmission record committed at the receiver
  kMirrored = 4,       // an entry of another participant's mirrored log (§V)
};

/// A Local Log entry. The same encoding is used as the PBFT value, so the
/// verification routines dispatch on the decoded record.
struct LogRecord {
  RecordType type = RecordType::kLogCommit;
  /// Which user verification routine applies (0 = accept-all default).
  uint64_t routine_id = 0;
  Bytes payload;

  /// kCommunication: destination participant.
  net::SiteId dest_site = -1;

  // --- kReceived only -------------------------------------------------------
  /// Source participant of the received message.
  net::SiteId src_site = -1;
  /// Position of the communication record in the source's Local Log.
  uint64_t src_log_pos = 0;
  /// Position of the previous communication record from the same source to
  /// this destination (0 if none) — the in-order chain pointer.
  uint64_t prev_src_log_pos = 0;
  /// f_i+1 source-unit signatures over the transmission canonical bytes,
  /// embedded so every replica can run the receive verification routine.
  std::vector<crypto::Signature> proof;
  /// With fg > 0: per mirror site, f_i+1 signatures proving the source
  /// participant's geo-replication of this record.
  std::vector<crypto::Signature> geo_proof;
  /// Position in the origin participant's geo-replication stream (counts
  /// API records only; 0 when fg == 0). For kMirrored records this is the
  /// mirror-log position.
  uint64_t geo_pos = 0;
  /// Wire v2 (qc.enabled): compact certificates standing in for `proof` /
  /// `geo_proof`. Encoded as a trailing optional section, emitted only when
  /// non-empty — v1 (qc off) encodings stay byte-identical, and a v1
  /// decoder's trailing bytes are simply these sections.
  std::vector<crypto::QuorumCert> proof_certs;
  std::vector<crypto::QuorumCert> geo_certs;

  Bytes Encode() const;
  static Status Decode(const Bytes& buf, LogRecord* out);

  /// Content digest used in attestations (always SHA-256: records are the
  /// unit of trust between sites).
  crypto::Digest ContentDigest() const;
};

/// Purposes bound into attestation signatures so one attestation cannot be
/// replayed as another.
enum class AttestPurpose : uint8_t {
  kTransmission = 1,  // "this communication record is committed at pos p"
  kGeoSource = 2,     // "this record is committed at pos p, replicate it"
  kGeoAck = 3,        // "this record is committed in my mirror log"
};

/// Canonical bytes a unit node signs to attest a committed record.
Bytes AttestCanonical(AttestPurpose purpose, net::SiteId site, uint64_t pos,
                      const crypto::Digest& digest);

/// A transmission record P (§IV-C): the message content plus a pointer to
/// the previous communication record to the same destination, carried with
/// f_i+1 signatures from the source unit.
struct TransmissionRecord {
  net::SiteId src_site = -1;
  net::SiteId dest_site = -1;
  uint64_t src_log_pos = 0;
  uint64_t prev_src_log_pos = 0;
  uint64_t routine_id = 0;
  Bytes payload;
  uint64_t geo_pos = 0;  // geo-replication stream position (fg > 0)
  std::vector<crypto::Signature> sigs;       // f_i+1 from the source unit
  std::vector<crypto::Signature> geo_proof;  // fg extension (§V)
  /// Wire v2 (qc.enabled): certificates standing in for `sigs`/`geo_proof`
  /// — trailing optional section, absent when both are empty.
  std::vector<crypto::QuorumCert> sig_certs;
  std::vector<crypto::QuorumCert> geo_certs;

  /// The digest the source unit's attestations cover.
  crypto::Digest ContentDigest() const;

  Bytes Encode() const;
  static Status Decode(const Bytes& buf, TransmissionRecord* out);

  /// The kReceived Local Log record this transmission becomes on commit.
  LogRecord ToReceivedRecord() const;
};

}  // namespace blockplane::core

#endif  // BLOCKPLANE_CORE_RECORD_H_
