// Tests for the byzantized applications and baselines: the counter example
// (Algorithm 1), Blockplane-paxos (Algorithm 3), the bank ledger, flat
// PBFT, and hierarchical PBFT.
#include <gtest/gtest.h>

#include "protocols/bank.h"
#include "protocols/bp_paxos.h"
#include "protocols/counter.h"
#include "protocols/flat_pbft.h"
#include "protocols/hier_pbft.h"
#include "sim/simulator.h"

namespace blockplane::protocols {
namespace {

using net::kCalifornia;
using net::kIreland;
using net::kOregon;
using net::kVirginia;
using net::Topology;
using sim::Seconds;

// --- counter (Algorithm 1) ------------------------------------------------------

class CounterTest : public ::testing::Test {
 protected:
  CounterTest()
      : simulator_(3),
        deployment_(&simulator_, Topology::Aws4(), {}),
        counter_(&deployment_) {}

  sim::Simulator simulator_;
  core::Deployment deployment_;
  CounterProtocol counter_;
};

TEST_F(CounterTest, RequestIncrementsDestinationCounter) {
  counter_.UserRequest(kCalifornia, kOregon, "trusted-alice");
  ASSERT_TRUE(simulator_.RunUntilCondition(
      [&] { return counter_.counter(kOregon) == 1; }, Seconds(60)));
  EXPECT_EQ(counter_.counter(kCalifornia), 0);
}

TEST_F(CounterTest, ManyRequestsCountExactlyOnce) {
  for (int i = 0; i < 5; ++i) {
    counter_.UserRequest(kCalifornia, kVirginia, "trusted-bob");
    counter_.UserRequest(kIreland, kVirginia, "trusted-carol");
  }
  ASSERT_TRUE(simulator_.RunUntilCondition(
      [&] { return counter_.counter(kVirginia) == 10; }, Seconds(240)));
  simulator_.RunFor(Seconds(5));
  EXPECT_EQ(counter_.counter(kVirginia), 10);  // no double counting
}

TEST_F(CounterTest, UntrustedUserRequestIsRejected) {
  counter_.UserRequest(kCalifornia, kOregon, "evil-mallory");
  EXPECT_FALSE(simulator_.RunUntilCondition(
      [&] { return counter_.counter(kOregon) > 0; }, Seconds(5)));
}

TEST_F(CounterTest, MaliciousNodeCannotForgeSends) {
  // A byzantine node at California tries to originate a counter message
  // without any user request: the send verification routine (no matching
  // committed request) withholds the unit's commit votes.
  core::LogRecord forged;
  forged.type = core::RecordType::kCommunication;
  forged.routine_id = CounterProtocol::kVerifySend;
  Encoder enc;
  enc.PutU8(2);  // kTagCount
  enc.PutU64(999);
  forged.payload = enc.Take();
  forged.dest_site = kOregon;
  deployment_.node(kCalifornia, 3)->SubmitLocalCommit(forged);
  EXPECT_FALSE(simulator_.RunUntilCondition(
      [&] { return counter_.counter(kOregon) > 0; }, Seconds(5)));
}

// --- Blockplane-paxos (Algorithm 3) ----------------------------------------------

class BpPaxosTest : public ::testing::Test {
 protected:
  BpPaxosTest()
      : simulator_(5),
        deployment_(&simulator_, Topology::Aws4(), {}),
        paxos_(&deployment_) {}

  bool Elect(net::SiteId site) {
    bool won = false;
    bool done = false;
    paxos_.LeaderElection(site, [&](bool w) {
      won = w;
      done = true;
    });
    EXPECT_TRUE(
        simulator_.RunUntilCondition([&] { return done; }, Seconds(120)));
    return won;
  }

  sim::Simulator simulator_;
  core::Deployment deployment_;
  BpPaxos paxos_;
};

TEST_F(BpPaxosTest, LeaderElectionWins) {
  EXPECT_TRUE(Elect(kVirginia));
  EXPECT_TRUE(paxos_.IsLeader(kVirginia));
}

TEST_F(BpPaxosTest, ReplicationCommitsValue) {
  ASSERT_TRUE(Elect(kVirginia));
  bool committed = false;
  paxos_.Replicate(kVirginia, ToBytes("decided value"),
                   [&](bool ok) { committed = ok; });
  ASSERT_TRUE(simulator_.RunUntilCondition([&] { return committed; },
                                           Seconds(120)));
  ASSERT_EQ(paxos_.decided(kVirginia).size(), 1u);
  EXPECT_EQ(ToString(paxos_.decided(kVirginia).begin()->second),
            "decided value");
  // The decision disseminates to the other participants.
  ASSERT_TRUE(simulator_.RunUntilCondition(
      [&] {
        return paxos_.decided(kCalifornia).size() == 1 &&
               paxos_.decided(kIreland).size() == 1;
      },
      Seconds(120)));
}

TEST_F(BpPaxosTest, NonLeaderCannotReplicate) {
  bool called = false;
  bool ok = true;
  paxos_.Replicate(kOregon, ToBytes("nope"), [&](bool result) {
    ok = result;
    called = true;
  });
  simulator_.RunFor(Seconds(1));
  EXPECT_TRUE(called);
  EXPECT_FALSE(ok);
}

TEST_F(BpPaxosTest, SequentialReplicationsStayOrdered) {
  ASSERT_TRUE(Elect(kCalifornia));
  for (int i = 0; i < 3; ++i) {
    bool committed = false;
    paxos_.Replicate(kCalifornia, ToBytes("v" + std::to_string(i)),
                     [&](bool ok) { committed = ok; });
    ASSERT_TRUE(simulator_.RunUntilCondition([&] { return committed; },
                                             Seconds(120)));
  }
  const auto& decided = paxos_.decided(kCalifornia);
  ASSERT_EQ(decided.size(), 3u);
  int i = 0;
  for (const auto& [slot, value] : decided) {
    EXPECT_EQ(ToString(value), "v" + std::to_string(i++));
  }
}

TEST_F(BpPaxosTest, ReplicationLatencyIsMajorityRttPlusLocalOverhead) {
  // Fig. 7: Blockplane-paxos at a Virginia leader ≈ RTT to the closest
  // majority (70 ms) plus intra-datacenter commit overhead (10–13%).
  ASSERT_TRUE(Elect(kVirginia));
  simulator_.RunFor(Seconds(2));
  sim::SimTime start = simulator_.Now();
  bool committed = false;
  paxos_.Replicate(kVirginia, ToBytes("timed"),
                   [&](bool) { committed = true; });
  ASSERT_TRUE(simulator_.RunUntilCondition([&] { return committed; },
                                           Seconds(120)));
  double ms = sim::ToMillis(simulator_.Now() - start);
  EXPECT_GT(ms, 70.0);
  EXPECT_LT(ms, 95.0);
}

TEST_F(BpPaxosTest, DuellingCandidatesNeverSplitDecisions) {
  // Two sites run the Leader Election routine concurrently. Whatever
  // happens with the leader flags, decided values must never diverge.
  bool done_a = false;
  bool done_b = false;
  paxos_.LeaderElection(kCalifornia, [&](bool) { done_a = true; });
  paxos_.LeaderElection(kIreland, [&](bool) { done_b = true; });
  ASSERT_TRUE(simulator_.RunUntilCondition(
      [&] { return done_a && done_b; }, Seconds(240)));

  // Let whoever holds the leadership replicate; retry elections until one
  // site succeeds (losers pick new proposal numbers, per Algorithm 3).
  net::SiteId leader = -1;
  for (int attempt = 0; attempt < 5 && leader < 0; ++attempt) {
    for (int site = 0; site < 4; ++site) {
      if (paxos_.IsLeader(site)) leader = site;
    }
    if (leader < 0) {
      ASSERT_TRUE(Elect(kOregon));
      leader = kOregon;
    }
  }
  ASSERT_GE(leader, 0);
  bool committed = false;
  paxos_.Replicate(leader, ToBytes("undisputed"),
                   [&](bool ok) { committed = ok; });
  ASSERT_TRUE(simulator_.RunUntilCondition([&] { return committed; },
                                           Seconds(240)));
  simulator_.RunFor(Seconds(2));
  // Every participant that learned slot 1 learned the same value.
  for (int site = 0; site < 4; ++site) {
    for (const auto& [slot, value] : paxos_.decided(site)) {
      EXPECT_EQ(ToString(value), "undisputed")
          << "site " << site << " slot " << slot;
    }
  }
}

// --- bank ledger --------------------------------------------------------------

class BankTest : public ::testing::Test {
 protected:
  BankTest()
      : simulator_(7),
        deployment_(&simulator_, Topology::Aws4(), {}),
        bank_(&deployment_) {}

  void Deposit(net::SiteId site, const std::string& account,
               int64_t amount) {
    bool done = false;
    bank_.Deposit(site, account, amount, [&](Status) { done = true; });
    ASSERT_TRUE(
        simulator_.RunUntilCondition([&] { return done; }, Seconds(30)));
  }

  sim::Simulator simulator_;
  core::Deployment deployment_;
  BankLedger bank_;
};

TEST_F(BankTest, DepositAndTransfer) {
  Deposit(kCalifornia, "alice", 100);
  bool done = false;
  bank_.Transfer(kCalifornia, "alice", "bob", 40,
                 [&](Status) { done = true; });
  ASSERT_TRUE(
      simulator_.RunUntilCondition([&] { return done; }, Seconds(30)));
  EXPECT_EQ(bank_.Balance(kCalifornia, "alice"), 60);
  EXPECT_EQ(bank_.Balance(kCalifornia, "bob"), 40);
  // Every replica's state agrees.
  simulator_.RunFor(Seconds(1));
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(bank_.NodeBalance(kCalifornia, i, "alice"), 60);
    EXPECT_EQ(bank_.NodeBalance(kCalifornia, i, "bob"), 40);
  }
}

TEST_F(BankTest, OverdraftNeverCommits) {
  Deposit(kCalifornia, "alice", 10);
  bool done = false;
  bank_.Transfer(kCalifornia, "alice", "bob", 1000,
                 [&](Status) { done = true; });
  EXPECT_FALSE(
      simulator_.RunUntilCondition([&] { return done; }, Seconds(5)));
  EXPECT_EQ(bank_.Balance(kCalifornia, "alice"), 10);
  EXPECT_EQ(bank_.Balance(kCalifornia, "bob"), 0);
}

TEST_F(BankTest, CrossSiteWire) {
  Deposit(kCalifornia, "alice", 100);
  bank_.Wire(kCalifornia, "alice", kIreland, "seamus", 30, nullptr);
  ASSERT_TRUE(simulator_.RunUntilCondition(
      [&] { return bank_.Balance(kIreland, "seamus") == 30; }, Seconds(120)));
  EXPECT_EQ(bank_.Balance(kCalifornia, "alice"), 70);
  // The destination replicas credited exactly once.
  simulator_.RunFor(Seconds(5));
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(bank_.NodeBalance(kIreland, i, "seamus"), 30);
  }
}

TEST_F(BankTest, UncoveredWireNeverLeaves) {
  Deposit(kCalifornia, "alice", 10);
  bank_.Wire(kCalifornia, "alice", kOregon, "bob", 500, nullptr);
  EXPECT_FALSE(simulator_.RunUntilCondition(
      [&] { return bank_.Balance(kOregon, "bob") > 0; }, Seconds(5)));
  EXPECT_EQ(bank_.Balance(kCalifornia, "alice"), 10);
}

TEST_F(BankTest, MoneyIsConservedAcrossConcurrentWires) {
  // Conservation invariant: wires move money, never create or destroy it.
  Deposit(kCalifornia, "a", 500);
  Deposit(kIreland, "b", 500);
  for (int i = 0; i < 4; ++i) {
    bank_.Wire(kCalifornia, "a", kIreland, "b", 25, nullptr);
    bank_.Wire(kIreland, "b", kCalifornia, "a", 10, nullptr);
  }
  // Wait until all 8 wires are delivered on both sides.
  ASSERT_TRUE(simulator_.RunUntilCondition(
      [&] {
        int64_t a = bank_.Balance(kCalifornia, "a");
        int64_t b = bank_.Balance(kIreland, "b");
        return a == 500 - 4 * 25 + 4 * 10 && b == 500 + 4 * 25 - 4 * 10;
      },
      Seconds(300)));
  EXPECT_EQ(bank_.Balance(kCalifornia, "a") + bank_.Balance(kIreland, "b"),
            1000);
  // Replica copies conserve it too.
  simulator_.RunFor(Seconds(5));
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(bank_.NodeBalance(kCalifornia, i, "a") +
                  bank_.NodeBalance(kIreland, i, "b"),
              1000);
  }
}

// --- flat PBFT baseline ----------------------------------------------------------

TEST(FlatPbftTest, CommitsOverWideArea) {
  sim::Simulator simulator(9);
  net::Network network(&simulator, Topology::Aws4());
  crypto::KeyStore keys;
  FlatPbft pbft(&network, &keys, kCalifornia);
  bool done = false;
  sim::SimTime start = simulator.Now();
  pbft.Commit(ToBytes("global value"), [&](uint64_t) { done = true; });
  ASSERT_TRUE(
      simulator.RunUntilCondition([&] { return done; }, Seconds(60)));
  // Three wide-area phases: around 100-160 ms in this topology (Fig. 7
  // reports 102-157 ms).
  double ms = sim::ToMillis(simulator.Now() - start);
  EXPECT_GT(ms, 80.0);
  EXPECT_LT(ms, 180.0);
}

TEST(FlatPbftTest, AgreementAcrossSites) {
  sim::Simulator simulator(11);
  net::Network network(&simulator, Topology::Aws4());
  crypto::KeyStore keys;
  FlatPbft pbft(&network, &keys, kVirginia);
  for (int i = 0; i < 3; ++i) {
    bool done = false;
    pbft.Commit(ToBytes("v" + std::to_string(i)), [&](uint64_t) {
      done = true;
    });
    ASSERT_TRUE(
        simulator.RunUntilCondition([&] { return done; }, Seconds(60)));
  }
  simulator.RunFor(Seconds(2));
  auto& reference = pbft.replica(0)->executed_log();
  ASSERT_EQ(reference.size(), 3u);
  for (int site = 1; site < 4; ++site) {
    EXPECT_EQ(pbft.replica(site)->executed_log(), reference);
  }
}

// --- hierarchical PBFT baseline -----------------------------------------------------

TEST(HierPbftTest, ReplicatesWithLocalCommits) {
  sim::Simulator simulator(13);
  net::Network network(&simulator, Topology::Aws4());
  crypto::KeyStore keys;
  HierPbft hier(&network, &keys, /*f=*/1);
  bool done = false;
  sim::SimTime start = simulator.Now();
  hier.Replicate(kVirginia, ToBytes("value"), [&](uint64_t) { done = true; });
  ASSERT_TRUE(
      simulator.RunUntilCondition([&] { return done; }, Seconds(60)));
  double ms = sim::ToMillis(simulator.Now() - start);
  // Between plain paxos (one majority RTT, 70 ms from Virginia) and
  // Blockplane-paxos: local commits add a few ms.
  EXPECT_GT(ms, 70.0);
  EXPECT_LT(ms, 90.0);
}

TEST(HierPbftTest, ManySequentialRounds) {
  sim::Simulator simulator(17);
  net::Network network(&simulator, Topology::Aws4());
  crypto::KeyStore keys;
  HierPbft hier(&network, &keys, 1);
  for (int i = 0; i < 5; ++i) {
    bool done = false;
    hier.Replicate(kOregon, ToBytes("round-" + std::to_string(i)),
                   [&](uint64_t) { done = true; });
    ASSERT_TRUE(
        simulator.RunUntilCondition([&] { return done; }, Seconds(60)));
  }
  // The leader site committed each round's value + each decision marker.
  EXPECT_GE(hier.decided_rounds(kOregon), 5u);
}

TEST(HierPbftTest, DecisionsReachEverySite) {
  sim::Simulator simulator(15);
  net::Network network(&simulator, Topology::Aws4());
  crypto::KeyStore keys;
  HierPbft hier(&network, &keys, 1);
  bool done = false;
  hier.Replicate(kCalifornia, ToBytes("x"), [&](uint64_t) { done = true; });
  ASSERT_TRUE(
      simulator.RunUntilCondition([&] { return done; }, Seconds(60)));
  // Every site committed the pushed value locally (majority acked before
  // the decision; stragglers catch up shortly after).
  ASSERT_TRUE(simulator.RunUntilCondition(
      [&] {
        for (int site = 0; site < 4; ++site) {
          if (hier.decided_rounds(site) < 1) return false;
        }
        return true;
      },
      Seconds(60)));
}

}  // namespace
}  // namespace blockplane::protocols
