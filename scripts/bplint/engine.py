"""bplint driver: file collection, suppressions, deterministic output.

The engine is what makes bplint's output byte-identical run to run:

  * files are collected by sorted glob (and/or from the CMake
    compile-commands database), normalized to '/'-separated paths
    relative to the project root;
  * every rule's diagnostics are deduplicated and sorted by
    (path, line, rule, message);
  * suppressions (`// bplint:allow(BP00x) reason`) are applied after
    all rules ran, and the BP000 hygiene pass then reports malformed or
    unused suppressions — so a stale allow-comment cannot linger.

A suppression covers diagnostics of the listed rules on its own line
and on the following line (so it can trail the offending statement or
sit on its own line directly above it).
"""

from __future__ import annotations

import json
import os
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from cppmodel import FileFacts, analyze_file
from rules import ALL_RULES, Diagnostic, Project, RULE_FNS

_EXTS = (".cc", ".cpp", ".cxx", ".h", ".hpp")
_SKIP_DIRS = {"build", "build-asan", ".git", "third_party", "CMakeFiles"}


def _norm(path: str, root: str) -> str:
    rel = os.path.relpath(os.path.abspath(path), os.path.abspath(root))
    return rel.replace(os.sep, "/")


def collect_files(paths: Sequence[str], root: str,
                  compile_commands_dir: Optional[str]) -> List[str]:
    """Returns sorted root-relative paths of every file to analyze."""
    found: Set[str] = set()
    for p in paths:
        full = p if os.path.isabs(p) else os.path.join(root, p)
        if os.path.isfile(full):
            found.add(_norm(full, root))
            continue
        for dirpath, dirnames, filenames in os.walk(full):
            dirnames[:] = sorted(d for d in dirnames if d not in _SKIP_DIRS)
            for name in sorted(filenames):
                if name.endswith(_EXTS):
                    found.add(_norm(os.path.join(dirpath, name), root))
    # The compile-commands database contributes every translation unit
    # CMake knows about (deduplicated against the globbed set), so the
    # lint scope tracks the build scope instead of drifting from it.
    if compile_commands_dir:
        db = os.path.join(compile_commands_dir, "compile_commands.json")
        if os.path.isfile(db):
            with open(db, "r", encoding="utf-8") as fh:
                for entry in json.load(fh):
                    src = entry.get("file", "")
                    if not src:
                        continue
                    if not os.path.isabs(src):
                        src = os.path.join(entry.get("directory", ""), src)
                    rel = _norm(src, root)
                    if rel.startswith(".."):
                        continue  # outside the project root
                    if any(part in _SKIP_DIRS for part in rel.split("/")):
                        continue
                    if rel.endswith(_EXTS) and os.path.isfile(
                            os.path.join(root, rel)):
                        found.add(rel)
    return sorted(found)


def _apply_suppressions(
        files: Sequence[FileFacts],
        diags: Iterable[Diagnostic],
        enabled: Set[str]) -> Tuple[List[Diagnostic], List[Diagnostic]]:
    """Returns (surviving diagnostics, BP000 hygiene diagnostics)."""
    by_path: Dict[str, FileFacts] = {f.path: f for f in files}
    survivors: List[Diagnostic] = []
    for d in diags:
        facts = by_path.get(d.path)
        suppressed = False
        if facts is not None:
            for s in facts.suppressions:
                if not s.reason:
                    continue  # malformed; reported below, never honored
                if d.rule in s.rules and d.line in (s.line, s.line + 1):
                    s.used = True
                    suppressed = True
            # A suppression directly above covers the next line too.
        if not suppressed:
            survivors.append(d)

    hygiene: List[Diagnostic] = []
    for facts in files:
        for s in facts.suppressions:
            if not s.reason:
                hygiene.append(Diagnostic(
                    facts.path, s.line, "BP000",
                    f"bplint:allow({','.join(s.rules)}) has no reason; "
                    f"suppressions must justify themselves"))
                continue
            bad = [r for r in s.rules if r not in ALL_RULES]
            if bad:
                hygiene.append(Diagnostic(
                    facts.path, s.line, "BP000",
                    f"unknown rule id {', '.join(bad)} in bplint:allow"))
                continue
            if not s.used and any(r in enabled for r in s.rules):
                hygiene.append(Diagnostic(
                    facts.path, s.line, "BP000",
                    f"unused suppression bplint:allow("
                    f"{','.join(s.rules)}): nothing to suppress here"))
    return survivors, hygiene


def _analyze_one(args: Tuple[str, str]) -> FileFacts:
    """Pool worker: analyze one file. Pure in (root, rel), so the merged
    project — and therefore every diagnostic — is independent of worker
    count and completion order."""
    root, rel = args
    with open(os.path.join(root, rel), "r", encoding="utf-8",
              errors="replace") as fh:
        return analyze_file(rel, fh.read())


def run(paths: Sequence[str], root: str,
        compile_commands_dir: Optional[str] = None,
        disabled: Optional[Set[str]] = None,
        use_clang: bool = True,
        jobs: int = 1,
        changed_only: Optional[Set[str]] = None
        ) -> Tuple[List[Diagnostic], int]:
    """Analyzes, returns (sorted diagnostics, files analyzed).

    jobs > 1 parallelizes the per-file analysis only; the rule passes
    run serially over the merged project, so output is byte-identical
    to a serial run. changed_only (root-relative paths) filters the
    REPORTED diagnostics without shrinking the ANALYZED set — cross-file
    rules still see the whole project, so a change that breaks an
    invariant in an untouched file goes quiet rather than misattributed,
    and one in a touched file is still found through any chain."""
    disabled = disabled or set()
    enabled = {r for r in ALL_RULES if r not in disabled}
    rel_paths = collect_files(paths, root, compile_commands_dir)
    work = [(root, rel) for rel in rel_paths]
    if jobs > 1 and len(work) > 1:
        import multiprocessing
        with multiprocessing.Pool(min(jobs, len(work))) as pool:
            files = pool.map(_analyze_one, work)  # preserves input order
    else:
        files = [_analyze_one(w) for w in work]

    project = Project(files)
    if use_clang:
        # Optional refinement: when the libclang python bindings are
        # installed, resolve unordered-container variable types
        # semantically instead of lexically. Degrades to a no-op (with
        # identical diagnostics for this codebase) when unavailable.
        try:
            from clang_backend import refine_project
            refine_project(project, root, compile_commands_dir)
        except ImportError:
            pass

    diags: List[Diagnostic] = []
    for rule in ALL_RULES:
        if rule in enabled:
            diags.extend(RULE_FNS[rule](project))

    survivors, hygiene = _apply_suppressions(files, diags, enabled)
    out = sorted(set(survivors + hygiene))
    if changed_only is not None:
        out = [d for d in out if d.path in changed_only]
    return out, len(files)
