#include "pbft/client.h"

#include "common/metrics.h"

namespace blockplane::pbft {

PbftClient::PbftClient(net::Network* network, PbftConfig config,
                       net::NodeId self)
    : network_(network),
      sim_(network->simulator()),
      config_(std::move(config)),
      self_(self),
      token_(ClientToken(self)) {
  network_->Register(self_, this);
}

PbftClient::~PbftClient() {
  for (auto& [req_id, pending] : pending_) {
    sim_->Cancel(pending.retry_timer);
  }
  network_->Unregister(self_);
}

void PbftClient::Submit(Bytes value, DoneCallback done, TraceId trace_id) {
  uint64_t req_id = next_req_id_++;
  PendingRequest& pending = pending_[req_id];
  pending.value = std::move(value);
  pending.done = std::move(done);
  pending.trace = trace_id;
  pending.submitted_at = sim_->Now();
  SendRequest(req_id, /*broadcast=*/false);
  ArmRetry(req_id);
}

void PbftClient::SendRequest(uint64_t req_id, bool broadcast) {
  auto it = pending_.find(req_id);
  if (it == pending_.end()) return;
  RequestMsg request;
  request.client_token = token_;
  request.req_id = req_id;
  request.value = it->second.value;
  // Encode once; broadcast retries share the same allocation per recipient.
  net::PayloadPtr encoded = net::MakePayload(request.Encode());

  auto send_to = [&](net::NodeId dst) {
    net::Message msg;
    msg.src = self_;
    msg.dst = dst;
    msg.type = kRequest;
    msg.payload = encoded;  // refcount bump, not a copy
    msg.trace_id = it->second.trace;  // causal tag rides the whole round
    network_->Send(std::move(msg));
  };
  if (broadcast) {
    hotpath_stats().bytes_copied_saved +=
        static_cast<int64_t>(config_.nodes.size() > 1
                                 ? (config_.nodes.size() - 1) * encoded->size()
                                 : 0);
    for (const net::NodeId& node : config_.nodes) send_to(node);
  } else {
    send_to(config_.LeaderOf(view_hint_));
  }
}

void PbftClient::ArmRetry(uint64_t req_id) {
  auto it = pending_.find(req_id);
  if (it == pending_.end()) return;
  it->second.retry_timer =
      sim_->Schedule(config_.client_retry, [this, req_id]() {
        auto pending_it = pending_.find(req_id);
        if (pending_it == pending_.end()) return;
        // The leader may be faulty: broadcast so every replica sees the
        // request and can push for a view change.
        pending_it->second.broadcast = true;
        SendRequest(req_id, /*broadcast=*/true);
        ArmRetry(req_id);
      });
}

void PbftClient::NudgePending() {
  for (auto& [req_id, pending] : pending_) {
    pending.broadcast = true;
    sim_->Cancel(pending.retry_timer);
    pending.retry_timer = sim::kInvalidEventId;
    SendRequest(req_id, /*broadcast=*/true);
    ArmRetry(req_id);
  }
}

void PbftClient::HandleMessage(const net::Message& msg) {
  if (msg.type != kReply) return;
  ReplyMsg reply;
  if (!ReplyMsg::Decode(msg.body(), &reply).ok()) return;
  int sender = config_.ReplicaIndex(msg.src);
  if (sender < 0 || sender != reply.replica) return;

  auto it = pending_.find(reply.req_id);
  if (it == pending_.end()) return;  // already completed or never sent
  view_hint_ = std::max(view_hint_, reply.view);

  // Vote on (seq, result digest). Keying on seq alone let f byzantine
  // replicas plus one honest straggler "agree" while holding divergent
  // states; the digest pins the replies to a single post-execution state.
  auto& votes = it->second.votes[{reply.seq, reply.result_digest}];
  votes.insert(sender);
  if (static_cast<int>(votes.size()) < config_.f + 1) return;

  // f+1 matching replies: at least one is from an honest replica.
  Tracer& tr = tracer();
  if (tr.enabled() && it->second.trace != kNoTrace) {
    tr.Span(it->second.trace, "request", "pbft", it->second.submitted_at,
            sim_->Now(), self_.site, self_.index, reply.seq);
  }
  DoneCallback done = std::move(it->second.done);
  sim_->Cancel(it->second.retry_timer);
  pending_.erase(it);
  ++completed_;
  if (done) done(reply.seq);
}

}  // namespace blockplane::pbft
