// Node signatures and multi-signature proofs.
//
// The paper's deployment assumes "the set of nodes and their public keys are
// known to all nodes". We model digital signatures with HMAC-SHA256 under a
// per-node secret held in a shared KeyStore: Sign(node, msg) succeeds only
// when called through the node's own Signer handle, while any node can
// Verify. This preserves the property the protocol needs — a byzantine node
// cannot forge another node's signature — without pulling in a big-number
// public-key implementation. (The paper's own prototype skipped signature
// creation/checking entirely; see DESIGN.md §1.)
#ifndef BLOCKPLANE_CRYPTO_SIGNER_H_
#define BLOCKPLANE_CRYPTO_SIGNER_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "common/codec.h"
#include "common/macros.h"
#include "common/status.h"
#include "crypto/hmac.h"
#include "net/node_id.h"

namespace blockplane::crypto {

/// A 32-byte signature over a message, attributable to a node.
struct Signature {
  net::NodeId signer;
  Digest mac{};

  friend bool operator==(const Signature& a, const Signature& b) {
    return a.signer == b.signer && a.mac == b.mac;
  }
};

class Signer;

/// Registry of node keys for one simulated deployment.
class KeyStore {
 public:
  KeyStore() = default;
  BP_DISALLOW_COPY_AND_ASSIGN(KeyStore);

  /// Generates and registers a key for `node` (idempotent), returning the
  /// node's private signing handle.
  std::unique_ptr<Signer> RegisterNode(net::NodeId node);

  /// Verifies that `sig` is `sig.signer`'s signature over `msg`.
  bool Verify(const Bytes& msg, const Signature& sig) const;

  /// Verifies a proof: at least `threshold` valid signatures over `msg` from
  /// *distinct* nodes of site `site`. Extra or invalid signatures are
  /// ignored (a malicious sender may pad the list).
  bool VerifyProof(const Bytes& msg, const std::vector<Signature>& proof,
                   net::SiteId site, int threshold) const;

 private:
  friend class Signer;
  Digest SignAs(net::NodeId node, const Bytes& msg) const;

  std::unordered_map<net::NodeId, Bytes, net::NodeIdHash> keys_;
  uint64_t next_key_seed_ = 0x517cc1b727220a95ULL;
};

/// A node's private signing capability. Only the KeyStore can mint these.
class Signer {
 public:
  /// Signs a message as this node.
  Signature Sign(const Bytes& msg) const {
    return Signature{node_, store_->SignAs(node_, msg)};
  }
  net::NodeId node() const { return node_; }

 private:
  friend class KeyStore;
  Signer(const KeyStore* store, net::NodeId node)
      : store_(store), node_(node) {}

  const KeyStore* store_;
  net::NodeId node_;
};

/// Wire helpers for signatures and proofs.
void EncodeSignature(Encoder* enc, const Signature& sig);
Status DecodeSignature(Decoder* dec, Signature* out);
void EncodeProof(Encoder* enc, const std::vector<Signature>& proof);
Status DecodeProof(Decoder* dec, std::vector<Signature>* out);

}  // namespace blockplane::crypto

#endif  // BLOCKPLANE_CRYPTO_SIGNER_H_
