#include "sim/simulator.h"

#include <utility>

namespace blockplane::sim {

Simulator::Simulator(uint64_t seed) : rng_(seed) {}

EventId Simulator::Schedule(SimTime delay, std::function<void()> fn) {
  if (delay < 0) delay = 0;
  return ScheduleAt(now_ + delay, std::move(fn));
}

EventId Simulator::ScheduleAt(SimTime when, std::function<void()> fn) {
  BP_CHECK(when >= now_);
  EventId id = next_id_++;
  queue_.push(Event{when, next_seq_++, id, std::move(fn)});
  return id;
}

void Simulator::Cancel(EventId id) {
  if (id == kInvalidEventId) return;
  cancelled_.insert(id);
}

bool Simulator::Step() {
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    auto it = cancelled_.find(ev.id);
    if (it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    BP_CHECK(ev.when >= now_);
    now_ = ev.when;
    ++processed_;
    ev.fn();
    return true;
  }
  return false;
}

SimTime Simulator::Run() {
  while (Step()) {
  }
  return now_;
}

bool Simulator::RunUntil(SimTime deadline) {
  while (!queue_.empty()) {
    if (queue_.top().when > deadline) {
      now_ = deadline;
      return false;
    }
    Step();
  }
  if (now_ < deadline) now_ = deadline;
  return true;
}

bool Simulator::RunUntilCondition(const std::function<bool()>& pred,
                                  SimTime deadline) {
  if (pred()) return true;
  while (!queue_.empty() && queue_.top().when <= deadline) {
    Step();
    if (pred()) return true;
  }
  return false;
}

}  // namespace blockplane::sim
