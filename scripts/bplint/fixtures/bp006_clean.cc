// Fixture: BP006 clean — every counter is registered under its own
// name and every Mark() phase is in the catalog (and vice versa).

struct DemoStats {
  long long cache_hits = 0;
  long long cache_misses = 0;
  void Reset() { *this = DemoStats{}; }
};

struct Registry {
  void RegisterCounter(const char* name, long long* value);
};

void RegisterDemo(Registry* reg, DemoStats* stats) {
  reg->RegisterCounter("cache_hits", &stats->cache_hits);
  reg->RegisterCounter("cache_misses", &stats->cache_misses);
}

inline constexpr const char* kTracePhases[] = {
    "submit",
    "committed",
    "done",
};

struct Tracer {
  void Mark(unsigned long long trace, const char* phase, long long ts);
};

void Instrument(Tracer* tr, unsigned long long trace, long long now) {
  tr->Mark(trace, "submit", now);
  tr->Mark(trace, "committed", now);
  tr->Mark(trace, "done", now);
}

inline constexpr const char* kCongestionGaugeKeys[] = {
    "window",
    "decreases",
};

struct GaugeMap {};
void CongestionGauge(GaugeMap* out, const char* key, long long value);

void SnapshotDemo(GaugeMap* out, long long window, long long decreases) {
  CongestionGauge(out, "window", window);
  CongestionGauge(out, "decreases", decreases);
}
