// Unit tests for the crypto substrate: SHA-256 against FIPS vectors,
// HMAC-SHA256 against RFC 4231 vectors, and signature/proof semantics.
#include <gtest/gtest.h>

#include "common/codec.h"
#include "crypto/hmac.h"
#include "crypto/sha256.h"
#include "crypto/signer.h"

namespace blockplane::crypto {
namespace {

TEST(Sha256Test, EmptyString) {
  EXPECT_EQ(DigestToHex(Sha256Digest("")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, Abc) {
  EXPECT_EQ(DigestToHex(Sha256Digest("abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, TwoBlockMessage) {
  EXPECT_EQ(DigestToHex(Sha256Digest(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, MillionAs) {
  Sha256 ctx;
  std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) ctx.Update(chunk);
  EXPECT_EQ(DigestToHex(ctx.Finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, StreamingMatchesOneShot) {
  std::string msg = "the quick brown fox jumps over the lazy dog";
  Sha256 ctx;
  for (char c : msg) ctx.Update(std::string_view(&c, 1));
  EXPECT_EQ(ctx.Finish(), Sha256Digest(msg));
}

TEST(Sha256Test, ExactBlockBoundary) {
  std::string msg(64, 'x');
  std::string msg2(63, 'x');
  std::string msg3(65, 'x');
  EXPECT_NE(Sha256Digest(msg), Sha256Digest(msg2));
  EXPECT_NE(Sha256Digest(msg), Sha256Digest(msg3));
  // Streaming across the boundary agrees with one-shot.
  Sha256 ctx;
  ctx.Update(msg.substr(0, 40));
  ctx.Update(msg.substr(40));
  EXPECT_EQ(ctx.Finish(), Sha256Digest(msg));
}

TEST(HmacTest, Rfc4231Case1) {
  Bytes key(20, 0x0b);
  EXPECT_EQ(DigestToHex(HmacSha256(key, "Hi There")),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacTest, Rfc4231Case2) {
  Bytes key = ToBytes("Jefe");
  EXPECT_EQ(DigestToHex(HmacSha256(key, "what do ya want for nothing?")),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HmacTest, Rfc4231Case6LongKey) {
  Bytes key(131, 0xaa);
  EXPECT_EQ(DigestToHex(HmacSha256(
                key, "Test Using Larger Than Block-Size Key - Hash Key First")),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(SignerTest, SignVerifyRoundTrip) {
  KeyStore store;
  auto signer = store.RegisterNode({0, 1});
  Bytes msg = ToBytes("commit record 42");
  Signature sig = signer->Sign(msg);
  EXPECT_EQ(sig.signer, (net::NodeId{0, 1}));
  EXPECT_TRUE(store.Verify(msg, sig));
}

TEST(SignerTest, TamperedMessageFailsVerification) {
  KeyStore store;
  auto signer = store.RegisterNode({0, 1});
  Signature sig = signer->Sign(ToBytes("original"));
  EXPECT_FALSE(store.Verify(ToBytes("tampered"), sig));
}

TEST(SignerTest, SignatureNotTransferableBetweenNodes) {
  KeyStore store;
  auto signer1 = store.RegisterNode({0, 1});
  store.RegisterNode({0, 2});
  Bytes msg = ToBytes("msg");
  Signature sig = signer1->Sign(msg);
  // A byzantine node relabeling the signature as node 0-2's does not verify.
  sig.signer = {0, 2};
  EXPECT_FALSE(store.Verify(msg, sig));
}

TEST(SignerTest, UnknownSignerFailsVerification) {
  KeyStore store;
  Signature sig;
  sig.signer = {9, 9};
  EXPECT_FALSE(store.Verify(ToBytes("m"), sig));
}

TEST(SignerTest, RegisterIsIdempotent) {
  KeyStore store;
  auto a = store.RegisterNode({1, 0});
  auto b = store.RegisterNode({1, 0});
  Bytes msg = ToBytes("m");
  EXPECT_EQ(a->Sign(msg).mac, b->Sign(msg).mac);
}

TEST(ProofTest, ThresholdOfDistinctSigners) {
  KeyStore store;
  auto s0 = store.RegisterNode({0, 0});
  auto s1 = store.RegisterNode({0, 1});
  Bytes msg = ToBytes("transmission record");
  std::vector<Signature> proof = {s0->Sign(msg), s1->Sign(msg)};
  EXPECT_TRUE(store.VerifyProof(msg, proof, /*site=*/0, /*threshold=*/2));
  EXPECT_FALSE(store.VerifyProof(msg, proof, 0, 3));
}

TEST(ProofTest, DuplicateSignersDoNotCount) {
  KeyStore store;
  auto s0 = store.RegisterNode({0, 0});
  Bytes msg = ToBytes("m");
  std::vector<Signature> proof = {s0->Sign(msg), s0->Sign(msg),
                                  s0->Sign(msg)};
  EXPECT_FALSE(store.VerifyProof(msg, proof, 0, 2));
}

TEST(ProofTest, WrongSiteSignaturesIgnored) {
  KeyStore store;
  auto s0 = store.RegisterNode({0, 0});
  auto other = store.RegisterNode({1, 0});
  Bytes msg = ToBytes("m");
  std::vector<Signature> proof = {s0->Sign(msg), other->Sign(msg)};
  EXPECT_FALSE(store.VerifyProof(msg, proof, /*site=*/0, /*threshold=*/2));
  EXPECT_TRUE(store.VerifyProof(msg, proof, /*site=*/0, /*threshold=*/1));
}

TEST(ProofTest, InvalidSignaturesIgnored) {
  KeyStore store;
  auto s0 = store.RegisterNode({0, 0});
  store.RegisterNode({0, 1});
  Bytes msg = ToBytes("m");
  Signature forged;
  forged.signer = {0, 1};  // claims to be 0-1 but mac is zeroed
  std::vector<Signature> proof = {s0->Sign(msg), forged};
  EXPECT_FALSE(store.VerifyProof(msg, proof, 0, 2));
}

TEST(ProofCodecTest, RoundTrip) {
  KeyStore store;
  auto s0 = store.RegisterNode({2, 3});
  auto s1 = store.RegisterNode({2, 4});
  Bytes msg = ToBytes("payload");
  std::vector<Signature> proof = {s0->Sign(msg), s1->Sign(msg)};

  Encoder enc;
  EncodeProof(&enc, proof);
  Decoder dec(enc.buffer());
  std::vector<Signature> decoded;
  ASSERT_TRUE(DecodeProof(&dec, &decoded).ok());
  ASSERT_EQ(decoded.size(), 2u);
  EXPECT_EQ(decoded[0], proof[0]);
  EXPECT_EQ(decoded[1], proof[1]);
  EXPECT_TRUE(store.VerifyProof(msg, decoded, 2, 2));
}

TEST(ProofCodecTest, OversizedProofRejected) {
  Encoder enc;
  enc.PutVarint(100000);
  Decoder dec(enc.buffer());
  std::vector<Signature> decoded;
  EXPECT_TRUE(DecodeProof(&dec, &decoded).IsCorruption());
}

}  // namespace
}  // namespace blockplane::crypto
