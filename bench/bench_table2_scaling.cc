// Table II: local commitment performance while varying the number of unit
// nodes (4/7/10/13, i.e. f_i = 1..4), batch size 100 KB.
//
// Paper reference: throughput 83/51/28/25 MB/s; latency 1.2/1.9/3.5/4 ms.
#include <cstdio>

#include "bench_util.h"
#include "core/deployment.h"

namespace blockplane {
namespace {

void RunOne(int fi) {
  sim::Simulator simulator(1);
  core::BlockplaneOptions options;
  options.fi = fi;
  options.sign_messages = false;
  options.hash_payloads = false;
  options.checkpoint_interval = 8;
  options.prune_applied_log = 8;
  net::NetworkOptions net_options;
  net_options.intra_site_one_way = sim::Microseconds(100);
  net_options.per_message_cpu = sim::Microseconds(25);
  core::Deployment deployment(&simulator,
                              net::Topology::SingleSite("Virginia"), options,
                              net_options);

  Bytes batch = bench::MakeBatch(100);
  Histogram latency_ms;
  constexpr int kWarmup = 20;
  constexpr int kBatches = 200;
  for (int i = 0; i < kWarmup + kBatches; ++i) {
    bool done = false;
    sim::SimTime start = simulator.Now();
    deployment.participant(0)->LogCommit(Bytes(batch), 0,
                                         [&](uint64_t) { done = true; });
    simulator.RunUntilCondition([&] { return done; },
                                simulator.Now() + sim::Seconds(30));
    if (i >= kWarmup) latency_ms.Add(sim::ToMillis(simulator.Now() - start));
  }
  double mean = latency_ms.Mean();
  double mbps = static_cast<double>(batch.size()) / 1e6 / (mean / 1e3);
  std::printf("%10d %6d %14.2f %18.1f\n", 3 * fi + 1, fi, mean, mbps);
}

}  // namespace
}  // namespace blockplane

int main() {
  using namespace blockplane;
  bench::PrintHeader(
      "Table II: local commitment scalability (100 KB batches)",
      "nodes 4/7/10/13 -> 83/51/28/25 MB/s and 1.2/1.9/3.5/4 ms");
  std::printf("%10s %6s %14s %18s\n", "nodes", "f_i", "latency (ms)",
              "throughput (MB/s)");
  for (int fi = 1; fi <= 4; ++fi) RunOne(fi);
  return 0;
}
