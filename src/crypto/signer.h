// Node signatures and multi-signature proofs.
//
// The paper's deployment assumes "the set of nodes and their public keys are
// known to all nodes". We model digital signatures with HMAC-SHA256 under a
// per-node secret held in a shared KeyStore: Sign(node, msg) succeeds only
// when called through the node's own Signer handle, while any node can
// Verify. This preserves the property the protocol needs — a byzantine node
// cannot forge another node's signature — without pulling in a big-number
// public-key implementation. (The paper's own prototype skipped signature
// creation/checking entirely; see DESIGN.md §1.)
#ifndef BLOCKPLANE_CRYPTO_SIGNER_H_
#define BLOCKPLANE_CRYPTO_SIGNER_H_

#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/codec.h"
#include "common/macros.h"
#include "common/status.h"
#include "crypto/hmac.h"
#include "net/node_id.h"

namespace blockplane::common {
class Runner;
}  // namespace blockplane::common

namespace blockplane::crypto {

/// A 32-byte signature over a message, attributable to a node.
struct Signature {
  net::NodeId signer;
  Digest mac{};

  friend bool operator==(const Signature& a, const Signature& b) {
    return a.signer == b.signer && a.mac == b.mac;
  }
};

class Signer;
struct QuorumCert;  // crypto/quorum_cert.h

/// One entry of a KeyStore::VerifyBatch call: `msg` + `sig` are inputs,
/// `ok` is the output verdict.
struct VerifyJob {
  Bytes msg;
  Signature sig;
  bool ok = false;
};

/// One entry of a Signer::SignBatch call: `msg` is the input, `sig` the
/// output signature.
struct SignJob {
  Bytes msg;
  Signature sig{};
};

/// Registry of node keys for one simulated deployment.
///
/// Hot-path design (see DESIGN.md §"Hot path & caching"):
///   * every key is stored alongside its PrecomputedHmacKey, so signing and
///     verifying cost 2 SHA-256 compressions instead of 4 plus schedule
///     setup — keys are long-lived per node, the midstates are computed
///     once at registration;
///   * Verify() consults a bounded verify-once cache of (signer, mac,
///     message) triples that have already verified. Quorum re-deliveries,
///     retransmissions, and certificates re-checked by every replica hit
///     the cache and skip the HMAC entirely. Only *successful*
///     verifications are cached, and a hit requires the full triple to
///     match byte-for-byte, so a forged or corrupted signature can never
///     ride a cache entry: it misses and takes (and fails) the full check.
class KeyStore {
 public:
  KeyStore() = default;
  BP_DISALLOW_COPY_AND_ASSIGN(KeyStore);

  /// Generates and registers a key for `node` (idempotent), returning the
  /// node's private signing handle.
  std::unique_ptr<Signer> RegisterNode(net::NodeId node);

  /// Verifies that `sig` is `sig.signer`'s signature over `msg`.
  bool Verify(const Bytes& msg, const Signature& sig) const;

  /// Worker-thread-safe verification against registered key material: no
  /// verify-once cache, no hot-path counters. This is the entry point for
  /// Runner prologues (DESIGN.md §12). Safe to call concurrently from
  /// worker threads provided no RegisterNode runs concurrently —
  /// registration is deployment setup, strictly before traffic flows.
  bool VerifyDetached(const Bytes& msg, const Signature& sig) const;

  /// Batched verification through `runner` (nullptr = DefaultRunner).
  /// Jobs are split into chunks; each chunk's HMAC recomputation runs as
  /// one prologue — on a worker thread under a threaded runner — and its
  /// verdicts retire in submission order, where the hot-path counters and
  /// the verify-once cache are updated. On a serial runner this degrades
  /// to the plain Verify() loop: bit-identical counters and cache
  /// behavior. Blocks until every job's verdict is written.
  void VerifyBatch(std::vector<VerifyJob>* jobs,
                   common::Runner* runner) const;

  /// Verifies a proof: at least `threshold` valid signatures over `msg` from
  /// *distinct* nodes of site `site`. Invalid signatures and other sites'
  /// entries are ignored (a malicious sender may pad the list), but a
  /// duplicated signer index *within* `site` rejects the whole proof: an
  /// honest unit never emits one (every collection path dedups by signer),
  /// so a duplicate is a forgery attempt at counting one signature twice.
  bool VerifyProof(const Bytes& msg, const std::vector<Signature>& proof,
                   net::SiteId site, int threshold) const;

  /// Verifies a quorum certificate (crypto/quorum_cert.h, DESIGN.md §14):
  /// at least `threshold` signers in the bitmap, every listed MAC
  /// recomputed from registered key material, aggregate compared. Consults
  /// the digest-keyed two-generation cert cache first, so retransmissions,
  /// go-back-N trailing flights, backfill replays, and re-submissions cost
  /// one probe instead of f_i+1 signature checks. Retire-thread only (it
  /// touches the cache and the qc.* counters).
  bool VerifyCert(const Bytes& msg, const QuorumCert& cert,
                  int threshold) const;

  /// Worker-thread-safe cert verification: no cache, no counters — the
  /// Runner-prologue entry point, mirroring VerifyDetached. Callers seed
  /// the cache at ordered epilogue retirement via SeedCertCache.
  bool VerifyCertDetached(const Bytes& msg, const QuorumCert& cert,
                          int threshold) const;

  /// Records a cert that a prologue already verified detached: inserts it
  /// into the cert cache and lands the accounting the serial VerifyCert
  /// miss path would have produced. Retire-thread only.
  void SeedCertCache(const Bytes& msg, const QuorumCert& cert) const;

  /// Bounds the verify-once caches (total entries across both generations,
  /// applied to the signature cache and the cert cache independently).
  /// 0 disables caching; the default keeps roughly one WAN round's worth of
  /// certificates for a 4-site deployment.
  void set_verify_cache_capacity(size_t capacity) {
    verify_cache_capacity_ = capacity;
    if (capacity == 0) {
      verified_cur_.clear();
      verified_prev_.clear();
      cert_cur_.clear();
      cert_prev_.clear();
    }
  }
  size_t verify_cache_capacity() const { return verify_cache_capacity_; }

 private:
  friend class Signer;
  Digest SignAs(net::NodeId node, const Bytes& msg) const;
  /// The precomputed key of a registered node (CHECK-fails otherwise).
  const PrecomputedHmacKey& HmacFor(net::NodeId node) const;

  /// One verified (signer, mac, message) triple.
  struct VerifiedSig {
    net::NodeId signer;
    Digest mac;
    Bytes msg;

    friend bool operator==(const VerifiedSig& a, const VerifiedSig& b) {
      return a.signer == b.signer && a.mac == b.mac && a.msg == b.msg;
    }
  };
  struct VerifiedSigHash {
    size_t operator()(const VerifiedSig& v) const;
  };
  using VerifiedSet = std::unordered_set<VerifiedSig, VerifiedSigHash>;

  bool CacheLookup(const VerifiedSig& entry) const;
  void CacheInsert(VerifiedSig entry) const;

  struct KeyEntry {
    Bytes raw;
    PrecomputedHmacKey hmac;
  };
  std::unordered_map<net::NodeId, KeyEntry, net::NodeIdHash> keys_;
  uint64_t next_key_seed_ = 0x517cc1b727220a95ULL;

  /// One verified (site, bitmap, aggregate, message) certificate — the
  /// cert cache key covers every byte a forgery could vary.
  struct VerifiedCert {
    net::SiteId site;
    int32_t index_base;
    uint64_t signer_bits;
    Digest agg;
    Bytes msg;

    friend bool operator==(const VerifiedCert& a, const VerifiedCert& b) {
      return a.site == b.site && a.index_base == b.index_base &&
             a.signer_bits == b.signer_bits && a.agg == b.agg &&
             a.msg == b.msg;
    }
  };
  struct VerifiedCertHash {
    size_t operator()(const VerifiedCert& v) const;
  };
  using CertSet = std::unordered_set<VerifiedCert, VerifiedCertHash>;

  bool CertCacheLookup(const VerifiedCert& entry) const;
  void CertCacheInsert(VerifiedCert entry) const;

  /// Two-generation bounded caches: inserts go to `cur`; when `cur` fills
  /// to half the capacity, it becomes `prev` and a fresh `cur` starts.
  /// Lookups consult both, so entries survive between half-capacity and
  /// capacity insertions — O(1) amortized, strictly bounded memory. The
  /// signature cache keys (signer, mac, msg) triples (PR 1); the cert
  /// cache keys whole certificates (DESIGN.md §14).
  size_t verify_cache_capacity_ = 8192;
  mutable VerifiedSet verified_cur_;
  mutable VerifiedSet verified_prev_;
  mutable CertSet cert_cur_;
  mutable CertSet cert_prev_;
};

/// A node's private signing capability. Only the KeyStore can mint these.
class Signer {
 public:
  /// Signs a message as this node.
  Signature Sign(const Bytes& msg) const {
    return Signature{node_, store_->SignAs(node_, msg)};
  }

  /// Batched signing through `runner` (nullptr = DefaultRunner). Chunked
  /// prologues compute the HMACs (worker threads under a threaded runner);
  /// accounting lands at ordered epilogue retirement. On a serial runner
  /// this degrades to the plain Sign() loop. Blocks until every job's
  /// signature is written.
  void SignBatch(std::vector<SignJob>* jobs, common::Runner* runner) const;

  net::NodeId node() const { return node_; }

 private:
  friend class KeyStore;
  Signer(const KeyStore* store, net::NodeId node)
      : store_(store), node_(node) {}

  const KeyStore* store_;
  net::NodeId node_;
};

/// Wire helpers for signatures and proofs.
void EncodeSignature(Encoder* enc, const Signature& sig);
Status DecodeSignature(Decoder* dec, Signature* out);
void EncodeProof(Encoder* enc, const std::vector<Signature>& proof);
Status DecodeProof(Decoder* dec, std::vector<Signature>* out);

}  // namespace blockplane::crypto

#endif  // BLOCKPLANE_CRYPTO_SIGNER_H_
