#include "common/runner.h"

#include "common/metrics.h"

namespace blockplane::common {

namespace {

ThreadPoolRunner::Options ClampOptions(ThreadPoolRunner::Options options) {
  if (options.workers < 1) options.workers = 1;
  if (options.queue_capacity < 1) options.queue_capacity = 1;
  return options;
}

}  // namespace

void InlineRunner::RunPrologue(Prologue prologue) {
  RunnerStats& stats = runner_stats();
  stats.prologues_submitted++;
  Epilogue epilogue = prologue();
  if (epilogue) {
    epilogue();
  } else {
    stats.prologues_dropped++;
  }
  stats.epilogues_retired++;
}

void InlineRunner::RunBatch(std::vector<BatchTask> tasks) {
  runner_stats().batch_tasks += static_cast<int64_t>(tasks.size());
  for (BatchTask& task : tasks) task();
}

Runner* DefaultRunner() {
  // InlineRunner has no data members; it only bumps the submit-thread-owned
  // RunnerStats block, so sharing one instance is safe.
  // bplint:allow(BP007) stateless singleton, mutated only via RunnerStats
  static InlineRunner runner;
  return &runner;
}

ThreadPoolRunner::ThreadPoolRunner(Options options)
    : options_(ClampOptions(options)) {
  threads_.reserve(static_cast<size_t>(options_.workers));
  for (int i = 0; i < options_.workers; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPoolRunner::~ThreadPoolRunner() {
  Drain();
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  task_ready_.notify_all();
  for (std::thread& thread : threads_) thread.join();
}

void ThreadPoolRunner::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    while (!stop_ && claim_next_ == base_ + window_.size() &&
           batch_next_ >= batch_.size()) {
      if (options_.spin) {
        // Busy-poll: release the lock so submitters and the retire path
        // make progress, yield, re-probe.
        lock.unlock();
        std::this_thread::yield();
        lock.lock();
      } else {
        task_ready_.wait(lock);
      }
    }
    // Batch tasks preempt window prologues: the protocol thread is blocked
    // inside RunBatch until they finish, which stalls all retirement.
    if (batch_next_ < batch_.size()) {
      const size_t i = batch_next_++;
      lock.unlock();
      batch_[i]();
      lock.lock();
      if (++batch_finished_ == batch_.size()) batch_done_.notify_all();
      continue;
    }
    if (claim_next_ == base_ + window_.size()) return;  // stopping, all claimed
    const uint64_t seq = claim_next_++;
    Prologue prologue = std::move(window_[seq - base_].prologue);
    lock.unlock();

    Epilogue epilogue = prologue();

    lock.lock();
    // base_ cannot have advanced past seq: retirement stops at the first
    // not-done slot, and this slot is only marked done below.
    Slot& slot = window_[seq - base_];
    slot.epilogue = std::move(epilogue);
    slot.done = true;
    if (seq == base_) front_done_.notify_all();
  }
}

bool ThreadPoolRunner::RetireFront(std::unique_lock<std::mutex>& lock) {
  if (retiring_ > 0) return false;  // an epilogue is mid-flight; keep order
  if (window_.empty() || !window_.front().done) return false;
  Epilogue epilogue = std::move(window_.front().epilogue);
  window_.pop_front();
  ++base_;
  ++retiring_;
  lock.unlock();
  RunnerStats& stats = runner_stats();
  if (epilogue) {
    epilogue();  // may reentrantly call RunPrologue
  } else {
    stats.prologues_dropped++;
  }
  stats.epilogues_retired++;
  lock.lock();
  --retiring_;
  return true;
}

void ThreadPoolRunner::RunPrologue(Prologue prologue) {
  RunnerStats& stats = runner_stats();
  stats.prologues_submitted++;
  std::unique_lock<std::mutex> lock(mu_);
  // Backpressure: block until the window has room, retiring ready
  // epilogues while waiting. A reentrant submission (from an epilogue this
  // very loop is running) must not block — the retire path above it in the
  // stack cannot make progress — so it is allowed to overshoot the cap.
  if (retiring_ == 0 && window_.size() >= options_.queue_capacity) {
    stats.backpressure_waits++;
    while (window_.size() >= options_.queue_capacity) {
      if (!RetireFront(lock)) front_done_.wait(lock);
    }
  }
  window_.push_back(Slot{std::move(prologue), nullptr, false});
  const auto depth = static_cast<int64_t>(window_.size());
  if (depth > stats.queue_depth_peak) stats.queue_depth_peak = depth;
  if (!options_.spin) task_ready_.notify_one();
}

void ThreadPoolRunner::RunBatch(std::vector<BatchTask> tasks) {
  if (tasks.empty()) return;
  RunnerStats& stats = runner_stats();
  stats.batch_tasks += static_cast<int64_t>(tasks.size());
  std::unique_lock<std::mutex> lock(mu_);
  BP_CHECK_MSG(batch_.empty(), "RunBatch is not reentrant");
  batch_ = std::move(tasks);
  batch_next_ = 0;
  batch_finished_ = 0;
  if (!options_.spin) task_ready_.notify_all();
  // The caller participates: with every worker busy on long window
  // prologues the batch still makes progress, and on a small batch the
  // cheapest thread to run it is this one.
  while (batch_finished_ < batch_.size()) {
    if (batch_next_ < batch_.size()) {
      const size_t i = batch_next_++;
      lock.unlock();
      batch_[i]();
      lock.lock();
      ++batch_finished_;
    } else {
      batch_done_.wait(lock);
    }
  }
  batch_.clear();
}

size_t ThreadPoolRunner::Poll() {
  std::unique_lock<std::mutex> lock(mu_);
  size_t retired = 0;
  while (RetireFront(lock)) ++retired;
  return retired;
}

void ThreadPoolRunner::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!window_.empty()) {
    if (!RetireFront(lock)) front_done_.wait(lock);
  }
}

}  // namespace blockplane::common
