#include "chaos/engine.h"

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <utility>

#include "common/bytes.h"
#include "core/deployment.h"
#include "sim/simulator.h"

namespace blockplane::chaos {
namespace {

/// One scheduled workload operation on one participant.
struct WorkItem {
  sim::SimTime at = 0;
  bool is_send = false;
  net::SiteId dest = -1;  // sends only
  Bytes payload;
};

class Engine {
 public:
  explicit Engine(const Campaign& campaign)
      : campaign_(campaign),
        cfg_(campaign.config),
        sim_(cfg_.seed),
        deployment_(&sim_, net::Topology::Uniform(cfg_.num_sites, cfg_.rtt_ms),
                    MakeOptions(cfg_)) {}

  ChaosReport Run() {
    ScheduleFaults();
    ScheduleWorkload();
    report_.expected_completions = expected_completions_;
    report_.expected_reads = cfg_.reads_per_site * cfg_.num_sites;
    report_.live = sim_.RunUntilCondition(
        [this]() {
          return completions_ == expected_completions_ &&
                 reads_done_ == cfg_.reads_per_site * cfg_.num_sites;
        },
        cfg_.deadline);
    report_.finished_at = report_.live ? sim_.Now() : cfg_.deadline;
    report_.completions = completions_;
    report_.reads_ok = reads_ok_;
    report_.events_processed = sim_.processed_events();
    if (!report_.live) {
      std::ostringstream os;
      os << "workload stuck at deadline: " << completions_ << "/"
         << expected_completions_ << " completions, " << reads_done_ << "/"
         << cfg_.reads_per_site * cfg_.num_sites << " reads";
      for (const auto& [site, state] : sites_) {
        for (int k = 0; k < state.total; ++k) {
          if (!state.fired[k]) os << "; site " << site << " op#" << k;
        }
      }
      // Log heights tell which layer stalled (unit PBFT vs geo mirrors).
      for (net::SiteId site = 0; site < cfg_.num_sites; ++site) {
        os << "; unit" << site << " h=";
        for (int i = 0; i < 3 * cfg_.fi + 1; ++i) {
          os << (i ? "/" : "") << deployment_.node(site, i)->log_size();
        }
        os << " q=" << deployment_.node(site, 0)->quarantined_api_records();
        for (net::SiteId host : deployment_.mirror_sites_of(site)) {
          os << " mirror@" << host << "="
             << deployment_.mirror_node(host, site, 0)->log_size();
        }
      }
      Fail("liveness", os.str());
    }
    CheckLogAgreement();
    CheckMirrorContiguity();
    CollectCongestion();
    report_.ok = report_.failures.empty();
    return std::move(report_);
  }

 private:
  static core::BlockplaneOptions MakeOptions(const CampaignConfig& cfg) {
    core::BlockplaneOptions options;
    options.fi = cfg.fi;
    options.fg = cfg.fg;
    options.pbft_window = cfg.pbft_window;
    options.participant_window = cfg.participant_window;
    options.congestion.adaptive = cfg.adaptive_windows;
    options.qc.enabled = cfg.quorum_certs;
    // Byzantine detection depends on real signatures; corruption bursts
    // depend on real digests. Chaos always runs with crypto on.
    options.sign_messages = true;
    options.hash_payloads = true;
    return options;
  }

  void Fail(const std::string& invariant, const std::string& detail) {
    report_.failures.push_back({invariant, detail});
  }

  // --- fault application ------------------------------------------------------

  void ScheduleFaults() {
    for (const FaultAction& action : campaign_.actions) {
      sim_.ScheduleAt(action.at, [this, action]() { Apply(action); });
    }
  }

  core::BlockplaneNode* UnitNode(const FaultAction& a) {
    return deployment_.node(a.site_a, a.node_index);
  }

  void RecoverSiteNodes(net::SiteId site) {
    for (int i = 0; i < 3 * cfg_.fi + 1; ++i) {
      deployment_.node(site, i)->Recover();
    }
    if (cfg_.fg > 0) {
      // Mirror groups hosted at this site replicate other origins' logs;
      // they crashed with the datacenter and need catch-up too.
      for (net::SiteId origin = 0; origin < cfg_.num_sites; ++origin) {
        if (origin == site) continue;
        const auto& hosts = deployment_.mirror_sites_of(origin);
        if (std::find(hosts.begin(), hosts.end(), site) == hosts.end()) {
          continue;
        }
        for (int i = 0; i < 3 * cfg_.fi + 1; ++i) {
          deployment_.mirror_node(site, origin, i)->Recover();
        }
      }
    }
  }

  void Apply(const FaultAction& action) {
    net::Network* net = deployment_.network();
    switch (action.type) {
      case FaultType::kCrashNode:
        net->Crash({action.site_a, action.node_index});
        break;
      case FaultType::kRecoverNode:
        net->Recover({action.site_a, action.node_index});
        UnitNode(action)->Recover();
        break;
      case FaultType::kCrashSite:
        net->CrashSite(action.site_a);
        break;
      case FaultType::kRecoverSite:
        net->RecoverSite(action.site_a);
        RecoverSiteNodes(action.site_a);
        break;
      case FaultType::kPartition:
        net->PartitionSites(action.site_a, action.site_b);
        break;
      case FaultType::kHeal:
        net->HealPartition(action.site_a, action.site_b);
        break;
      case FaultType::kPartitionOneWay:
        net->PartitionOneWay(action.site_a, action.site_b);
        break;
      case FaultType::kHealOneWay:
        net->HealOneWay(action.site_a, action.site_b);
        break;
      case FaultType::kDropBurst:
        net->set_drop_prob(action.probability);
        sim_.Schedule(action.duration,
                      [net]() { net->set_drop_prob(0.0); });
        break;
      case FaultType::kCorruptBurst:
        net->set_corrupt_prob(action.probability);
        sim_.Schedule(action.duration,
                      [net]() { net->set_corrupt_prob(0.0); });
        break;
      case FaultType::kDuplicateBurst:
        net->set_duplicate_prob(action.probability);
        sim_.Schedule(action.duration,
                      [net]() { net->set_duplicate_prob(0.0); });
        break;
      case FaultType::kHealAll:
        net->HealAll();
        break;
      case FaultType::kByzEquivocate:
        MarkByzantine(action);
        UnitNode(action)->SetByzantineMode(pbft::ByzantineMode::kEquivocate);
        break;
      case FaultType::kByzSilent:
        MarkByzantine(action);
        UnitNode(action)->SetByzantineMode(pbft::ByzantineMode::kSilent);
        UnitNode(action)->MuteDaemons();
        break;
      case FaultType::kByzBogusVotes:
        MarkByzantine(action);
        UnitNode(action)->SetByzantineMode(pbft::ByzantineMode::kBogusVotes);
        break;
      case FaultType::kByzWithholdAttest:
        MarkByzantine(action);
        UnitNode(action)->RefuseAttestations();
        break;
      case FaultType::kByzForgeReads:
        MarkByzantine(action);
        UnitNode(action)->LieOnReads();
        break;
      case FaultType::kByzReorderGeo:
        MarkByzantine(action);
        UnitNode(action)->SetByzantineMode(pbft::ByzantineMode::kReorderGeo);
        break;
    }
  }

  void MarkByzantine(const FaultAction& action) {
    byzantine_.insert({action.site_a, action.node_index});
  }

  bool IsByzantine(net::SiteId site, int index) const {
    return byzantine_.count({site, index}) > 0;
  }

  // --- workload ---------------------------------------------------------------

  void ScheduleWorkload() {
    // Submissions arrive in bursts of `participant_window` ops so the
    // pipelined window actually fills: this is what lets a byzantine
    // geo-reordering leader commit later positions around a censored one
    // (and lets the quarantine defense see a real gap). Bursts are spread
    // over (0, horizon) and staggered per site.
    int burst = static_cast<int>(
        std::max<uint64_t>(1, cfg_.participant_window));
    for (net::SiteId site = 0; site < cfg_.num_sites; ++site) {
      std::vector<WorkItem> items;
      int commits = cfg_.ops_per_site;
      int sends = cfg_.sends_per_site;
      int total = commits + sends;
      int num_bursts = (total + burst - 1) / burst;
      int commit_idx = 0;
      int send_idx = 0;
      for (int k = 0; k < total; ++k) {
        WorkItem item;
        item.at = (static_cast<sim::SimTime>(k / burst) + 1) * cfg_.horizon /
                      (static_cast<sim::SimTime>(num_bursts) + 1) +
                  sim::Microseconds(10) * (k % burst) +
                  sim::Milliseconds(1) * site;
        bool want_send = sends > 0 && (commit_idx >= commits || k % 3 == 2);
        if (want_send) {
          item.is_send = true;
          item.dest = static_cast<net::SiteId>(
              (site + 1 + send_idx % (cfg_.num_sites - 1)) % cfg_.num_sites);
          item.payload = ToBytes("send-" + std::to_string(site) + "-" +
                                 std::to_string(send_idx));
          ++send_idx;
          --sends;
        } else {
          item.payload = ToBytes("op-" + std::to_string(site) + "-" +
                                 std::to_string(commit_idx));
          ++commit_idx;
        }
        items.push_back(std::move(item));
      }
      auto& state = sites_[site];
      state.total = total;
      state.fired.assign(total, 0);
      expected_completions_ += total;
      for (int k = 0; k < total; ++k) {
        const WorkItem& item = items[k];
        sim_.ScheduleAt(item.at, [this, site, k, item]() {
          Submit(site, k, item);
        });
      }
    }
  }

  void Submit(net::SiteId site, int order, const WorkItem& item) {
    core::Participant* p = deployment_.participant(site);
    auto done = [this, site, order](uint64_t pos) {
      OnCompleted(site, order, pos);
    };
    if (item.is_send) {
      p->Send(item.dest, item.payload, /*routine_id=*/0, done);
    } else {
      // The first `reads_per_site` log-commits are read back with a quorum
      // read once durable (byzantine templates; the forged-reply node must
      // not be able to poison the result).
      bool read_back = reads_started_[site] < cfg_.reads_per_site;
      if (read_back) ++reads_started_[site];
      core::Participant::CommitCallback commit_done = done;
      if (read_back) {
        Bytes payload = item.payload;
        commit_done = [this, site, order, payload](uint64_t pos) {
          OnCompleted(site, order, pos);
          IssueRead(site, pos, payload);
        };
      }
      p->LogCommit(item.payload, /*routine_id=*/0, std::move(commit_done));
    }
  }

  void OnCompleted(net::SiteId site, int order, uint64_t pos) {
    SiteState& state = sites_[site];
    if (state.fired[order]) {
      std::ostringstream os;
      os << "site " << site << " op " << order
         << " completion fired twice (pos " << pos << ")";
      Fail("completion-order", os.str());
      return;
    }
    state.fired[order] = 1;
    // The submission-order guarantee belongs to the participant's windowed
    // path (DESIGN.md §9), which fg == 0 deployments bypass: there the unit
    // leader orders concurrent requests, and a crash mid-request can
    // legitimately reorder completions. Exactly-once holds regardless.
    if (cfg_.fg > 0 && order != state.next_expected) {
      std::ostringstream os;
      os << "site " << site << " op " << order << " completed before op "
         << state.next_expected << " (submission order violated)";
      Fail("completion-order", os.str());
    }
    state.next_expected = std::max(state.next_expected, order + 1);
    ++completions_;
  }

  void IssueRead(net::SiteId site, uint64_t pos, const Bytes& expect) {
    deployment_.participant(site)->Read(
        pos, core::ReadStrategy::kReadQuorum,
        [this, site, pos, expect](Status status, core::LogRecord record) {
          ++reads_done_;
          if (!status.ok()) {
            std::ostringstream os;
            os << "site " << site << " quorum read of pos " << pos
               << " failed: " << status.ToString();
            Fail("read", os.str());
            return;
          }
          if (record.payload != expect) {
            std::ostringstream os;
            os << "site " << site << " quorum read of pos " << pos
               << " returned a corrupted payload";
            Fail("read", os.str());
            return;
          }
          ++reads_ok_;
        });
  }

  // --- invariants -------------------------------------------------------------

  /// I1: pairwise common-prefix agreement + equal digest chains at equal
  /// heights, for every honest unit node and every mirror node.
  void CheckLogAgreement() {
    for (net::SiteId site = 0; site < cfg_.num_sites; ++site) {
      std::vector<core::BlockplaneNode*> honest;
      for (int i = 0; i < 3 * cfg_.fi + 1; ++i) {
        if (!IsByzantine(site, i)) honest.push_back(deployment_.node(site, i));
      }
      CompareGroup(honest, "unit " + std::to_string(site));
    }
    if (cfg_.fg == 0) return;
    for (net::SiteId origin = 0; origin < cfg_.num_sites; ++origin) {
      for (net::SiteId host : deployment_.mirror_sites_of(origin)) {
        std::vector<core::BlockplaneNode*> group;
        for (int i = 0; i < 3 * cfg_.fi + 1; ++i) {
          group.push_back(deployment_.mirror_node(host, origin, i));
        }
        CompareGroup(group, "mirror " + std::to_string(host) + "<-" +
                                std::to_string(origin));
      }
    }
  }

  void CompareGroup(const std::vector<core::BlockplaneNode*>& nodes,
                    const std::string& label) {
    if (nodes.size() < 2) return;
    core::BlockplaneNode* ref = nodes[0];
    for (size_t n = 1; n < nodes.size(); ++n) {
      core::BlockplaneNode* other = nodes[n];
      uint64_t common = std::min(ref->applied_high(), other->applied_high());
      for (uint64_t pos = 1; pos <= common; ++pos) {
        auto a = ref->log().find(pos);
        auto b = other->log().find(pos);
        if (a == ref->log().end() && b == other->log().end()) continue;
        bool diverged =
            (a == ref->log().end()) != (b == other->log().end()) ||
            (a != ref->log().end() && a->second.Encode() != b->second.Encode());
        if (diverged) {
          std::ostringstream os;
          os << label << ": node " << other->self().ToString()
             << " diverges from " << ref->self().ToString() << " at log pos "
             << pos;
          Fail("log-agreement", os.str());
          break;
        }
      }
      if (ref->applied_high() == other->applied_high() &&
          ref->chain_digest() != other->chain_digest()) {
        std::ostringstream os;
        os << label << ": nodes " << ref->self().ToString() << " and "
           << other->self().ToString() << " applied " << common
           << " values but hold different digest chains";
        Fail("log-agreement", os.str());
      }
    }
  }

  /// I3: mirror logs hold geo positions 1..max with no holes, and no honest
  /// unit node ends the run with quarantined API records.
  void CheckMirrorContiguity() {
    for (net::SiteId site = 0; site < cfg_.num_sites; ++site) {
      for (int i = 0; i < 3 * cfg_.fi + 1; ++i) {
        if (IsByzantine(site, i)) continue;
        core::BlockplaneNode* node = deployment_.node(site, i);
        if (node->quarantined_api_records() != 0) {
          std::ostringstream os;
          os << "unit node " << node->self().ToString() << " ended with "
             << node->quarantined_api_records()
             << " quarantined API records (geo gap never filled)";
          Fail("mirror-contiguity", os.str());
        }
      }
    }
    if (cfg_.fg == 0) return;
    for (net::SiteId origin = 0; origin < cfg_.num_sites; ++origin) {
      for (net::SiteId host : deployment_.mirror_sites_of(origin)) {
        for (int i = 0; i < 3 * cfg_.fi + 1; ++i) {
          core::BlockplaneNode* node = deployment_.mirror_node(host, origin, i);
          std::set<uint64_t> positions;
          uint64_t high = 0;
          for (const auto& [pos, record] : node->log()) {
            if (record.type != core::RecordType::kMirrored) continue;
            positions.insert(record.geo_pos);
            high = std::max(high, record.geo_pos);
          }
          if (positions.size() != high) {
            std::ostringstream os;
            os << "mirror node " << node->self().ToString() << " (origin "
               << origin << ") holds " << positions.size()
               << " mirrored entries but high position " << high
               << " (stream has holes)";
            Fail("mirror-contiguity", os.str());
          }
        }
      }
    }
  }

  /// Snapshots the per-controller "congestion.<label>" gauge groups while
  /// the deployment is still alive (controllers unregister on teardown)
  /// plus the process-wide aggregates. All zeros when adaptive is off.
  void CollectCongestion() {
    const CongestionStats& cs = congestion_stats();
    report_.congestion_loss_events = cs.loss_events;
    report_.congestion_decreases = cs.decreases;
    bool any = false;
    for (const auto& [group, counters] : metrics_registry().Snapshot()) {
      if (group.rfind("congestion.", 0) != 0) continue;
      auto window = counters.find("window");
      auto min_seen = counters.find("min_window_seen");
      if (window == counters.end() || min_seen == counters.end()) continue;
      if (!any) {
        any = true;
        report_.window_final_min = window->second;
        report_.window_final_max = window->second;
        report_.window_min_seen = min_seen->second;
      } else {
        report_.window_final_min =
            std::min(report_.window_final_min, window->second);
        report_.window_final_max =
            std::max(report_.window_final_max, window->second);
        report_.window_min_seen =
            std::min(report_.window_min_seen, min_seen->second);
      }
    }
  }

  const Campaign& campaign_;
  const CampaignConfig& cfg_;
  sim::Simulator sim_;
  core::Deployment deployment_;
  ChaosReport report_;

  struct SiteState {
    int total = 0;
    int next_expected = 0;
    std::vector<uint8_t> fired;
  };
  std::map<net::SiteId, SiteState> sites_;
  std::map<net::SiteId, int> reads_started_;
  std::set<std::pair<net::SiteId, int>> byzantine_;
  int expected_completions_ = 0;
  int completions_ = 0;
  int reads_done_ = 0;
  int reads_ok_ = 0;
};

}  // namespace

std::string ChaosReport::ToString() const {
  std::ostringstream os;
  os << (ok ? "OK" : "FAIL") << ": " << completions << "/"
     << expected_completions << " completions";
  if (expected_reads > 0) {
    os << ", " << reads_ok << "/" << expected_reads << " quorum reads";
  }
  os << ", finished at " << sim::ToMillis(finished_at) << " ms, "
     << events_processed << " events";
  for (const InvariantFailure& f : failures) {
    os << "\n  [" << f.invariant << "] " << f.detail;
  }
  return os.str();
}

ChaosReport RunCampaign(const Campaign& campaign) {
  // The congestion aggregates are process-wide; reset so the report's
  // numbers are attributable to this campaign alone (controllers are
  // created during Deployment construction, hence before Engine::Run).
  congestion_stats().Reset();
  Engine engine(campaign);
  return engine.Run();
}

}  // namespace blockplane::chaos
