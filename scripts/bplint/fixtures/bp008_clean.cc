// Fixture: BP008 clean — every Status result is bound, checked,
// explicitly voided, or carries a reasoned allow.

struct Status {
  static Status OK();
  bool ok() const;
};

Status LoadState(int epoch);

bool Recover() {
  Status s = LoadState(1);                // bound: fine
  if (!LoadState(2).ok()) return false;   // checked inline: fine
  (void)LoadState(3);                     // explicit discard: fine
  return s.ok();
}

void WarmCaches() {
  // A best-effort prefetch whose failure the next access repairs.
  // bplint:allow(BP008) advisory prefetch, a miss self-heals on demand
  LoadState(4);
}
