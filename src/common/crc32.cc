#include "common/crc32.h"

namespace blockplane {

namespace {

struct Crc32Table {
  uint32_t entries[256];
  Crc32Table() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
      }
      entries[i] = c;
    }
  }
};

}  // namespace

uint32_t Crc32(const uint8_t* data, size_t len) {
  static const Crc32Table table;
  uint32_t c = 0xffffffffu;
  for (size_t i = 0; i < len; ++i) {
    c = table.entries[(c ^ data[i]) & 0xff] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

}  // namespace blockplane
