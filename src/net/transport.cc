#include "net/transport.h"

#include <algorithm>

#include "common/crc32.h"
#include "common/metrics.h"
#include "common/trace.h"

namespace blockplane::net {

namespace {

// Transport frames reserve the top bit of the MessageType space.
constexpr MessageType kDataFrame = 0x80000001u;
constexpr MessageType kAckFrame = 0x80000002u;

/// Varint length of `v` (LEB128, 7 bits per byte).
size_t VarintLen(uint64_t v) {
  size_t len = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++len;
  }
  return len;
}

Bytes EncodeDataFrame(uint64_t seq, MessageType app_type, Bytes&& payload) {
  Encoder enc;
  // Exact frame size up front: u64 seq + u32 type + varint length prefix +
  // payload + u32 crc. The byte-at-a-time appends below then never
  // reallocate (the old encoder grew the buffer geometrically, re-copying
  // the partially built frame along the way).
  enc.Reserve(8 + 4 + VarintLen(payload.size()) + payload.size() + 4);
  enc.PutU64(seq);
  enc.PutU32(app_type);
  enc.PutBytes(payload);
  enc.PutU32(Crc32(enc.buffer()));
  // The payload buffer itself is dead after this call; its bytes live on
  // inside the frame. Taking it by rvalue is what saved the second copy.
  return enc.Take();
}

}  // namespace

ReliableTransport::ReliableTransport(Network* network, NodeId self,
                                     Handler handler, TransportOptions options)
    : network_(network),
      self_(self),
      handler_(std::move(handler)),
      options_(options) {
  network_->Register(self_, this);
}

ReliableTransport::~ReliableTransport() {
  for (auto& [dst, peer] : send_state_) {
    for (auto& [seq, pending] : peer.in_flight) {
      network_->simulator()->Cancel(pending.timer);
    }
  }
  network_->Unregister(self_);
}

bool ReliableTransport::has_rtt_estimate(NodeId dst) const {
  auto it = rtt_.find(dst);
  return it != rtt_.end() && it->second.has_sample();
}

sim::SimTime ReliableTransport::srtt(NodeId dst) const {
  auto it = rtt_.find(dst);
  return it == rtt_.end() ? 0 : it->second.srtt();
}

sim::SimTime ReliableTransport::RtoFor(NodeId dst, int retries) const {
  // Peer term: the smoothed measured round trip once acks have been
  // sampled. The topology constant is only the pre-sample prior — the
  // wire RTT says nothing about the peer's processing/queueing delay,
  // which the measured estimate includes.
  sim::SimTime rtt;
  auto est = rtt_.find(dst);
  if (est != rtt_.end() && est->second.has_sample()) {
    rtt = est->second.Rto(options_.base_rto) - options_.base_rto;
  } else {
    rtt = dst.site == self_.site
              ? 2 * network_->options().intra_site_one_way
              : network_->topology().Rtt(self_.site, dst.site);
  }
  // Apply the backoff multiplier with the max_rto clamp inside the loop:
  // the effective timeout is bounded, not just the pre-backoff base. (The
  // old order scaled first and clamped after, so backoff^retries could
  // overflow the int64 cast before min() ever saw the value.)
  double scaled = static_cast<double>(options_.base_rto + rtt);
  double ceiling = static_cast<double>(options_.max_rto);
  for (int i = 0; i < retries && scaled < ceiling; ++i) {
    scaled *= options_.backoff;
  }
  if (scaled >= ceiling) return options_.max_rto;
  return std::min(static_cast<sim::SimTime>(scaled), options_.max_rto);
}

void ReliableTransport::Send(NodeId dst, MessageType type, Bytes&& payload,
                             uint64_t trace_id) {
  PeerSend& peer = send_state_[dst];
  uint64_t seq = peer.next_seq++;
  Pending pending;
  pending.app_type = type;
  pending.trace_id = trace_id;
  pending.first_sent = network_->simulator()->Now();
  // The rvalue signature spares the deep copy the old by-value parameter
  // made at this API boundary; the frame encoder below is the only copy.
  transport_stats().bytes_copied_saved +=
      static_cast<int64_t>(payload.size());
  // Encode the frame exactly once; every transmission (first send and all
  // retransmits) shares this one buffer.
  pending.frame = MakePayload(EncodeDataFrame(seq, type, std::move(payload)));
  peer.in_flight.emplace(seq, std::move(pending));
  ++transport_stats().frames_sent;
  TransmitFrame(dst, seq);
  ArmTimer(dst, seq);
}

void ReliableTransport::TransmitFrame(NodeId dst, uint64_t seq) {
  const Pending& pending = send_state_[dst].in_flight.at(seq);
  Message msg;
  msg.src = self_;
  msg.dst = dst;
  msg.type = kDataFrame;
  msg.payload = pending.frame;  // refcount bump, not a copy
  msg.trace_id = pending.trace_id;
  if (pending.retries > 0) {
    hotpath_stats().bytes_copied_saved +=
        static_cast<int64_t>(pending.frame->size());
  }
  network_->Send(std::move(msg));
}

void ReliableTransport::ArmTimer(NodeId dst, uint64_t seq) {
  Pending& pending = send_state_[dst].in_flight.at(seq);
  pending.timer = network_->simulator()->Schedule(
      RtoFor(dst, pending.retries), [this, dst, seq]() {
        auto peer_it = send_state_.find(dst);
        if (peer_it == send_state_.end()) return;
        auto it = peer_it->second.in_flight.find(seq);
        if (it == peer_it->second.in_flight.end()) return;  // acked
        Pending& p = it->second;
        if (++p.retries > options_.max_retries) {
          // Peer presumed dead. The old code erased the frame silently
          // here, leaving upper layers waiting forever on a delivery that
          // would never come; now the drop is counted, traced, and
          // reported through on_drop.
          MessageType app_type = p.app_type;
          uint64_t trace_id = p.trace_id;
          peer_it->second.in_flight.erase(it);
          ++frames_abandoned_;
          ++transport_stats().frames_abandoned;
          Tracer& tr = tracer();
          if (tr.enabled()) {
            // Span-ending drop event: the trace's message died here.
            tr.Instant(trace_id, "transport_drop", "net",
                       network_->simulator()->Now(), self_.site, self_.index,
                       seq);
          }
          if (on_drop_) on_drop_(dst, app_type, seq);
          return;
        }
        ++retransmissions_;
        ++transport_stats().retransmissions;
        TransmitFrame(dst, seq);
        ArmTimer(dst, seq);
      });
}

void ReliableTransport::HandleMessage(const Message& raw) {
  switch (raw.type) {
    case kDataFrame:
      HandleDataFrame(raw);
      break;
    case kAckFrame:
      HandleAckFrame(raw);
      break;
    default:
      // Not a transport frame; a peer is speaking raw Network at us.
      // Deliver as-is so mixed deployments keep working.
      handler_(raw);
  }
}

void ReliableTransport::HandleDataFrame(const Message& raw) {
  const Bytes& frame = raw.body();
  // Verify the checksum before trusting any field.
  if (frame.size() < 4) {
    ++discarded_corrupt_;
    ++transport_stats().discarded_corrupt;
    return;
  }
  Decoder crc_dec(frame.data() + frame.size() - 4, 4);
  uint32_t expected_crc = 0;
  BP_CHECK(crc_dec.GetU32(&expected_crc).ok());
  if (Crc32(frame.data(), frame.size() - 4) != expected_crc) {
    ++discarded_corrupt_;  // corrupted in flight; sender will retransmit
    ++transport_stats().discarded_corrupt;
    return;
  }

  Decoder dec(frame.data(), frame.size() - 4);
  uint64_t seq = 0;
  MessageType app_type = 0;
  Bytes payload;
  if (!dec.GetU64(&seq).ok() || !dec.GetU32(&app_type).ok() ||
      !dec.GetBytes(&payload).ok()) {
    ++discarded_corrupt_;
    ++transport_stats().discarded_corrupt;
    return;
  }

  // Always ack, even duplicates (the first ack may have been dropped).
  // Acks are checksummed too: a corrupted ack must not decode as a valid
  // acknowledgement of a different (undelivered) frame.
  Encoder ack;
  ack.PutU64(seq);
  ack.PutU32(Crc32(ack.buffer()));
  Message ack_msg;
  ack_msg.src = self_;
  ack_msg.dst = raw.src;
  ack_msg.type = kAckFrame;
  ack_msg.set_body(ack.Take());
  network_->Send(std::move(ack_msg));

  PeerRecv& peer = recv_state_[raw.src];
  if (seq < peer.next_expected) return;  // duplicate
  PayloadPtr shared = MakePayload(std::move(payload));
  if (seq > peer.next_expected) {
    // Out-of-order: buffer the decoded payload by reference. Delivery later
    // moves the same allocation into the application message.
    hotpath_stats().bytes_copied_saved +=
        static_cast<int64_t>(shared->size());
    peer.pending.emplace(
        seq, BufferedFrame{app_type, std::move(shared), raw.trace_id});
    return;
  }
  // In-order: deliver, then drain any buffered successors.
  Message out;
  out.src = raw.src;
  out.dst = self_;
  out.type = app_type;
  out.payload = std::move(shared);
  out.trace_id = raw.trace_id;  // the causal id crosses the transport
  peer.next_expected++;
  handler_(out);
  while (true) {
    auto it = peer.pending.find(peer.next_expected);
    if (it == peer.pending.end()) break;
    Message next;
    next.src = raw.src;
    next.dst = self_;
    next.type = it->second.app_type;
    next.payload = std::move(it->second.payload);
    next.trace_id = it->second.trace_id;
    peer.pending.erase(it);
    peer.next_expected++;
    handler_(next);
  }
}

void ReliableTransport::HandleAckFrame(const Message& raw) {
  const Bytes& frame = raw.body();
  Decoder dec(frame);
  uint64_t seq = 0;
  uint32_t crc = 0;
  if (!dec.GetU64(&seq).ok() || !dec.GetU32(&crc).ok()) return;
  if (frame.size() < 12 ||
      Crc32(frame.data(), 8) != crc) {
    ++discarded_corrupt_;
    ++transport_stats().discarded_corrupt;
    return;
  }
  auto peer_it = send_state_.find(raw.src);
  if (peer_it == send_state_.end()) return;
  auto it = peer_it->second.in_flight.find(seq);
  if (it == peer_it->second.in_flight.end()) return;
  if (it->second.retries == 0) {
    // Clean round trip: feed the per-peer estimator (Karn's rule — a
    // retransmitted frame's ack is ambiguous and is never sampled).
    rtt_[raw.src].AddSample(network_->simulator()->Now() -
                            it->second.first_sent);
    ++transport_stats().rtt_samples;
  }
  network_->simulator()->Cancel(it->second.timer);
  peer_it->second.in_flight.erase(it);
}

}  // namespace blockplane::net
