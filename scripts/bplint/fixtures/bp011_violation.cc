// Fixture: BP011 — a wire-controlled count must be bounded by the
// decoder's remaining bytes before it sizes an allocation. A constant
// cap is NOT a bound: it still lets a 20-byte message demand a
// 4096-element reserve (the DecodeBatch attacker-allocation class).

struct Status {
  static Status OK();
  bool ok() const;
};

struct Decoder {
  Status GetU32(unsigned* value);
  unsigned long remaining() const;
};

struct Frame {
  int parts[4];
};

Status DecodeFrames(Decoder* dec, std::vector<Frame>* out) {
  unsigned n = 0;
  Status s = dec->GetU32(&n);
  if (!s.ok()) return s;
  if (n > 4096) return s;  // constant cap only: not a real bound
  out->reserve(n);         // forbidden: attacker-chosen allocation
  return Status::OK();
}
