// The user-space handle of one participant (§III): the programming model's
// log-commit / read / send / receive interface, plus the geo-correlated
// commit orchestration of §V.
//
// A Participant is the trusted user-space process of its organization; it
// drives the protocol P. Durability and byzantine masking come from the
// participant's 3f_i+1 Blockplane nodes, which the Participant talks to
// through a PBFT client (local commits), attestation requests, and delivery
// notices (of which it requires f_i+1 matching copies before believing a
// received message).
#ifndef BLOCKPLANE_CORE_PARTICIPANT_H_
#define BLOCKPLANE_CORE_PARTICIPANT_H_

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <set>

#include "common/trace.h"
#include "core/node.h"
#include "core/options.h"
#include "core/wire.h"
#include "pbft/client.h"

namespace blockplane::core {

class WindowController;

/// How a Local Log entry is read back (§VI-A).
enum class ReadStrategy {
  /// Served by the closest node with the entry's validity proof.
  kReadOne,
  /// Waits for 2f_i+1 identical responses.
  kReadQuorum,
  /// Commits the read to the log like any entry (strongest).
  kLinearizable,
};

class Participant : public net::Host {
 public:
  /// Called with the Local Log position once the operation is durable (and,
  /// when fg > 0, geo-replicated to fg other participants).
  using CommitCallback = std::function<void(uint64_t pos)>;
  using ReceiveHandler =
      std::function<void(net::SiteId src, const Bytes& payload)>;
  using ReadCallback = std::function<void(Status, LogRecord)>;

  /// `mirror_sites`: the 2*fg participants mirroring this site (empty when
  /// fg == 0).
  Participant(net::Network* network, crypto::KeyStore* keys,
              BlockplaneOptions options, pbft::PbftConfig unit_group,
              net::SiteId site, std::vector<net::SiteId> mirror_sites);
  ~Participant() override;
  BP_DISALLOW_COPY_AND_ASSIGN(Participant);

  // --- the paper's user-level interface -------------------------------------

  /// log-commit: appends an arbitrary value to the Local Log, surviving the
  /// configured fault-tolerance level and ordered after all previous
  /// commits.
  void LogCommit(Bytes payload, uint64_t routine_id, CommitCallback done);

  /// send: commits a communication record; the communication daemons take
  /// it from there. `done` fires at local (plus geo, if fg>0) commitment —
  /// not at remote delivery.
  void Send(net::SiteId dest, Bytes payload, uint64_t routine_id,
            CommitCallback done);

  /// receive: next unconsumed message from `src`, in source-log order.
  bool TryReceive(net::SiteId src, Bytes* payload);
  /// Push-style receive (drains the same queues as TryReceive).
  void SetReceiveHandler(ReceiveHandler handler);

  /// read: fetches Local Log entry `pos` under the given strategy.
  void Read(uint64_t pos, ReadStrategy strategy, ReadCallback done);

  // --- geo failover (§V) ------------------------------------------------------

  /// Acts as the primary for `origin` (a participant this site mirrors):
  /// commits into the local mirror log and geo-replicates to the other
  /// mirror sites. Used after `origin`'s datacenter fails.
  void MirrorCommit(net::SiteId origin, Bytes payload, uint64_t routine_id,
                    CommitCallback done);

  /// Must be told the mirror topology before MirrorCommit: the sites
  /// mirroring `origin` (including this one).
  void SetMirrorPeers(net::SiteId origin, std::vector<net::SiteId> peers);

  void HandleMessage(const net::Message& msg) override;

  net::SiteId site() const { return site_; }
  uint64_t commits_completed() const { return commits_completed_; }
  const BlockplaneOptions& options() const { return options_; }

 private:
  struct GeoRound {
    uint64_t unit_pos = 0;  // 0 for MirrorCommit rounds
    uint64_t geo_pos = 0;
    net::SiteId origin;     // whose log stream
    Bytes record_encoded;   // the replicated record R
    crypto::Digest digest;  // Sha256(R)
    std::vector<crypto::Signature> source_sigs;  // f_i+1 attestations
    /// With qc.enabled: `source_sigs` compressed into one compact cert,
    /// built once when the f_i+1-th attestation lands (DESIGN.md §14) so
    /// timer-driven replicate retries re-ship the same certificate.
    std::vector<crypto::QuorumCert> source_certs;
    std::map<net::SiteId, std::set<net::NodeId>> ack_nodes;
    /// Signatures accumulating toward a site's f_i+1 threshold.
    std::map<net::SiteId, std::vector<crypto::Signature>> ack_sigs_partial;
    /// Sites whose f_i+1-signature proof is complete.
    std::map<net::SiteId, std::vector<crypto::Signature>> ack_sigs;
    std::vector<net::SiteId> targets;  // mirror sites to replicate to
    bool is_communication = false;
    CommitCallback done;
    sim::EventId retry_timer = sim::kInvalidEventId;
    /// Time the replicate fan-out first hit the wire (0 = not yet); the
    /// geo-ack round trip is sampled from it under Karn's rule.
    sim::SimTime replicate_sent = 0;
    /// Time of the most recent fan-out (adaptive timer deadline base).
    sim::SimTime last_sent = 0;
    /// The replicate fan-out was retried at least once: Karn's rule
    /// excludes this round from RTT sampling.
    bool retried = false;
    /// Causal trace of the API operation driving this round (0 = untraced)
    /// plus the phase timestamps the "attest" / "geo_mirror" spans cover.
    TraceId trace = kNoTrace;
    sim::SimTime ts_local = 0;
    sim::SimTime ts_attested = 0;
  };

  struct ApiOp {
    LogRecord record;
    CommitCallback done;
    net::SiteId mirror_origin = -1;  // >= 0 for MirrorCommit ops
    /// Trace spanning the whole operation: submit -> local commit ->
    /// attestation -> geo mirror -> done (see common/trace.h).
    TraceId trace = kNoTrace;
    /// When the op entered the queue (for queue-wait trace spans).
    sim::SimTime enqueued = 0;
  };

  /// A submitted op waiting for its geo round (window slot). Completion
  /// callbacks fire strictly in submission order: a finished op waits in
  /// this deque until every earlier op finished too (DESIGN.md §9).
  struct InflightOp {
    ApiOp op;
    uint64_t result_pos = 0;
    bool finished = false;
  };

  void EnqueueOp(ApiOp op);
  /// Starts queued ops while the in-flight window has room (mirror ops run
  /// exclusively: they wait for the window to drain and block it while
  /// active).
  void PumpOps();
  /// Fires completion callbacks for the maximal finished prefix of
  /// `inflight_`, preserving submission order.
  void DrainFinished();
  void OnLocalCommitted(uint64_t geo_pos, uint64_t unit_pos);
  void StartGeoRound(const ApiOp& op, uint64_t unit_pos);
  void ReplicateRound(uint64_t geo_pos);
  void OnAttestResponse(const net::Message& msg);
  void OnGeoAck(const net::Message& msg);
  void FinishGeoRound(uint64_t geo_pos);
  void OnDeliverNotice(const net::Message& msg);
  /// Byzantine-leader geo-reorder defense (DESIGN.md §10): a unit node
  /// reports that the contiguous geo stream is stuck; nudge the pending
  /// PBFT submissions so the backups' watchdogs evict the censoring leader.
  void OnGeoGapNotice(const net::Message& msg);
  void OnRecvStatusReply(const net::Message& msg);
  void OnReadReply(const net::Message& msg);
  void StartMirrorOp();
  void ProceedMirrorOp();
  void CommitMirrorRecord(net::SiteId origin, uint64_t geo_pos);
  void OnMirrorEntry(const net::Message& msg);
  pbft::PbftClient* MirrorClient(net::SiteId origin);
  void SendTo(net::NodeId dst, net::MessageType type, Bytes payload);

  net::Network* network_;
  sim::Simulator* sim_;
  crypto::KeyStore* keys_;
  std::unique_ptr<crypto::Signer> signer_;
  BlockplaneOptions options_;
  pbft::PbftConfig unit_group_;
  net::SiteId site_;
  net::NodeId self_;
  std::vector<net::SiteId> mirror_sites_;
  std::unique_ptr<pbft::PbftClient> client_;
  std::map<net::SiteId, std::unique_ptr<pbft::PbftClient>> mirror_clients_;
  std::map<net::SiteId, std::vector<net::SiteId>> mirror_peers_;

  /// Queued API operations not yet submitted (the window was full).
  std::deque<ApiOp> ops_;
  /// Submitted ops in submission order, up to `participant_window` of them
  /// (1 = the paper's group-commit rule; batching happens in the payload).
  std::deque<InflightOp> inflight_;
  /// A MirrorCommit reconciliation/commit is active; it runs exclusively.
  bool mirror_op_active_ = false;
  /// Adaptive geo-round windows, one per mirror site (DESIGN.md §13);
  /// empty unless options.congestion.adaptive and fg > 0. The effective
  /// window is the minimum across mirrors: a geo round only completes when
  /// fg sites prove it, so the slowest mirror gates the pipeline.
  std::map<net::SiteId, std::unique_ptr<WindowController>> geo_ctl_;
  /// Open window-stall episode flag (pipeline.participant_window_stalls
  /// counts episodes, closed by any admission — not pump invocations).
  bool geo_window_stalled_ = false;
  /// Last time any geo ack arrived (adaptive mode): flowing acks prove
  /// the mirror paths are alive, so adaptive retries defer to
  /// max(round.last_sent, last_geo_progress_) + RTO — mirror-side commit
  /// queueing would otherwise trigger spurious re-sends that Karn-freeze
  /// the RTT estimators.
  sim::SimTime last_geo_progress_ = 0;
  /// Highest geo position whose round completed (own stream).
  uint64_t geo_seq_ = 0;
  /// Highest geo position assigned to a submitted op (own stream); rounds
  /// for positions (geo_seq_, geo_assign_] are in flight.
  uint64_t geo_assign_ = 0;
  uint64_t commits_completed_ = 0;
  /// Last time a geo gap notice triggered a NudgePending (rate limiting).
  sim::SimTime last_gap_nudge_ = 0;
  /// Concurrent geo rounds keyed by geo position. Mirror-acting rounds use
  /// the origin's stream positions, but run exclusively (no own-stream
  /// round coexists), so the key space never collides.
  std::map<uint64_t, std::unique_ptr<GeoRound>> geo_rounds_;

  /// Mirror status collection for MirrorCommit: per site, per node, the
  /// reported mirror-log high position. Before acting as primary, the
  /// participant reconciles its local mirror with the most advanced peer
  /// (§V: entries are on fg+1 participants, so some reachable mirror has
  /// everything that ever committed).
  std::map<net::SiteId, std::map<net::NodeId, uint64_t>> mirror_status_;
  net::SiteId mirror_status_origin_ = -1;
  sim::EventId mirror_op_timer_ = sim::kInvalidEventId;
  bool mirror_op_proceeded_ = false;
  /// Once acting as primary for an origin, the next stream position —
  /// the reconciliation round only runs at takeover.
  std::map<net::SiteId, uint64_t> acting_high_;

  // --- receive machinery -------------------------------------------------------
  struct NoticeKey {
    net::SiteId src;
    uint64_t pos;
    crypto::Digest digest;
    bool operator<(const NoticeKey& other) const {
      if (src != other.src) return src < other.src;
      if (pos != other.pos) return pos < other.pos;
      return digest < other.digest;
    }
  };
  std::map<NoticeKey, std::set<net::NodeId>> notice_votes_;
  /// Confirmed but not yet in-order messages: src -> (pos -> (prev, data)).
  std::map<net::SiteId, std::map<uint64_t, std::pair<uint64_t, Bytes>>>
      ready_;
  std::map<net::SiteId, uint64_t> delivered_pos_;
  std::map<net::SiteId, std::deque<Bytes>> receive_queues_;
  ReceiveHandler receive_handler_;

  // --- read machinery ------------------------------------------------------------
  struct PendingRead {
    uint64_t pos = 0;
    ReadStrategy strategy;
    ReadCallback done;
    std::map<crypto::Digest, std::set<net::NodeId>> votes;
    std::map<crypto::Digest, LogRecord> values;
    /// read-1 fallback: if the closest node is down, widen to the unit.
    sim::EventId retry_timer = sim::kInvalidEventId;
  };
  std::map<uint64_t, PendingRead> reads_;  // by read id
  uint64_t next_read_id_ = 1;
};

}  // namespace blockplane::core

#endif  // BLOCKPLANE_CORE_PARTICIPANT_H_
