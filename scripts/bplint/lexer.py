"""A small, self-contained C++ lexer for bplint.

bplint's rules are lexical/structural: they never need full semantic
analysis, only a faithful token stream with comments and preprocessor
lines separated out. Keeping the lexer dependency-free means the linter
runs anywhere python3 runs; when the libclang python bindings are
available, clang_backend.py refines *type resolution* on top of this
stream, but the token stream itself is always produced here so that
diagnostics are byte-identical with and without libclang installed.

Tokens are (kind, text, line) where kind is one of:
  'id'    identifiers and keywords
  'num'   numeric literals (pp-number, loosely)
  'str'   string literals (text is the *contents*, unescaped verbatim)
  'chr'   character literals
  'punct' operators / punctuation (multi-char operators pre-merged)

Comments are returned separately as (line, text) with the comment
markers stripped; preprocessor lines (and their backslash
continuations) are skipped entirely so header guards and includes never
pollute rule matching.
"""

from __future__ import annotations

from typing import List, NamedTuple, Tuple


class Tok(NamedTuple):
    kind: str
    text: str
    line: int


# Longest-match first. '>>' is kept as one token; template matchers in
# cppmodel treat it as two closing angle brackets.
_PUNCTS = [
    "<<=", ">>=", "->*", "...", "::", "->", "<<", ">>", "<=", ">=", "==",
    "!=", "&&", "||", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
    "++", "--", "##",
]
# First-char dispatch so the hot path probes only plausible operators
# (most punctuation — braces, parens, commas — has no multi-char form
# and skips the probe loop entirely).
_PUNCT_BY_FIRST: dict = {}
for _p in _PUNCTS:
    _PUNCT_BY_FIRST.setdefault(_p[0], []).append(_p)

_ID_START = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_")
_ID_CONT = _ID_START | set("0123456789")
_DIGITS = set("0123456789")


def lex(text: str) -> Tuple[List[Tok], List[Tuple[int, str]]]:
    """Tokenizes C++ source. Returns (tokens, comments)."""
    toks: List[Tok] = []
    comments: List[Tuple[int, str]] = []
    i = 0
    n = len(text)
    line = 1
    at_line_start = True  # only whitespace seen on this line so far

    while i < n:
        c = text[i]

        if c == "\n":
            line += 1
            i += 1
            at_line_start = True
            continue
        if c in " \t\r\f\v":
            i += 1
            continue

        # Preprocessor directive: skip the whole logical line.
        if c == "#" and at_line_start:
            while i < n:
                if text[i] == "\\" and i + 1 < n and text[i + 1] == "\n":
                    i += 2
                    line += 1
                    continue
                if text[i] == "\n":
                    break
                i += 1
            continue

        at_line_start = False

        # Line comment.
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            if j < 0:
                j = n
            comments.append((line, text[i + 2:j].strip()))
            i = j
            continue

        # Block comment.
        if c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            if j < 0:
                j = n
            body = text[i + 2:j]
            comments.append((line, body.strip()))
            line += body.count("\n")
            i = j + 2 if j < n else n
            continue

        # Raw string literal: R"delim( ... )delim".
        if c == "R" and i + 1 < n and text[i + 1] == '"':
            j = text.find("(", i + 2)
            if j >= 0 and j - (i + 2) <= 16:
                delim = text[i + 2:j]
                close = ")" + delim + '"'
                k = text.find(close, j + 1)
                if k >= 0:
                    body = text[j + 1:k]
                    toks.append(Tok("str", body, line))
                    line += text.count("\n", i, k + len(close))
                    i = k + len(close)
                    continue
            # Fall through: treat as identifier 'R'.

        # String literal.
        if c == '"':
            j = i + 1
            buf = []
            while j < n and text[j] != '"':
                if text[j] == "\\" and j + 1 < n:
                    buf.append(text[j:j + 2])
                    j += 2
                    continue
                if text[j] == "\n":
                    break  # unterminated; be forgiving
                buf.append(text[j])
                j += 1
            toks.append(Tok("str", "".join(buf), line))
            i = j + 1 if j < n else n
            continue

        # Character literal (but not a digit separator like 1'000'000:
        # handled in the number branch below).
        if c == "'":
            j = i + 1
            while j < n and text[j] != "'":
                if text[j] == "\\":
                    j += 1
                if text[j] == "\n":
                    break
                j += 1
            toks.append(Tok("chr", text[i + 1:j], line))
            i = j + 1 if j < n else n
            continue

        # Identifier / keyword.
        if c in _ID_START:
            j = i + 1
            while j < n and text[j] in _ID_CONT:
                j += 1
            toks.append(Tok("id", text[i:j], line))
            i = j
            continue

        # Number (pp-number, including hex, digit separators, suffixes,
        # and the dot/exponent forms).
        if c in _DIGITS or (c == "." and i + 1 < n and text[i + 1] in _DIGITS):
            j = i + 1
            while j < n:
                ch = text[j]
                if ch in _ID_CONT or ch == "." or ch == "'":
                    j += 1
                    continue
                if ch in "+-" and text[j - 1] in "eEpP":
                    j += 1
                    continue
                break
            toks.append(Tok("num", text[i:j], line))
            i = j
            continue

        # Punctuation, longest match first among same-first-char forms.
        for p in _PUNCT_BY_FIRST.get(c, ()):
            if text.startswith(p, i):
                toks.append(Tok("punct", p, line))
                i += len(p)
                break
        else:
            toks.append(Tok("punct", c, line))
            i += 1

    return toks, comments
