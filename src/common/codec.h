// Binary encoding/decoding of wire messages and log records.
//
// Little-endian fixed-width integers, varints, and length-prefixed byte
// strings. Decoding is defensive: every accessor returns a Status so that a
// corrupted or malicious message can never crash a replica.
#ifndef BLOCKPLANE_COMMON_CODEC_H_
#define BLOCKPLANE_COMMON_CODEC_H_

#include <cstdint>
#include <cstring>
#include <string>

#include "common/bytes.h"
#include "common/macros.h"
#include "common/status.h"

namespace blockplane {

/// Appends primitive values to a growing byte buffer.
class Encoder {
 public:
  Encoder() = default;

  void PutU8(uint8_t v) { buf_.push_back(v); }
  void PutU16(uint16_t v) { PutFixed(v); }
  void PutU32(uint32_t v) { PutFixed(v); }
  void PutU64(uint64_t v) { PutFixed(v); }
  void PutI64(int64_t v) { PutFixed(static_cast<uint64_t>(v)); }
  void PutBool(bool v) { PutU8(v ? 1 : 0); }

  /// LEB128-style unsigned varint.
  void PutVarint(uint64_t v);

  /// Length-prefixed (varint) byte string.
  void PutBytes(const Bytes& b);
  void PutString(std::string_view s);

  /// Raw bytes with no length prefix (caller knows the length).
  void PutRaw(const uint8_t* data, size_t len);

  /// Pre-sizes the buffer for `total` bytes of upcoming Puts. Encoders on
  /// hot paths (e.g. the transport's frame encoder) reserve the exact frame
  /// size up front so the byte-at-a-time appends never reallocate.
  void Reserve(size_t total) { buf_.reserve(buf_.size() + total); }

  const Bytes& buffer() const { return buf_; }
  Bytes Take() { return std::move(buf_); }
  size_t size() const { return buf_.size(); }

 private:
  template <typename T>
  void PutFixed(T v) {
    for (size_t i = 0; i < sizeof(T); ++i) {
      buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }
  }

  Bytes buf_;
};

/// Reads primitive values from a byte buffer; all reads are bounds-checked.
class Decoder {
 public:
  explicit Decoder(const Bytes& buf) : data_(buf.data()), size_(buf.size()) {}
  Decoder(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  Status GetU8(uint8_t* out);
  Status GetU16(uint16_t* out) { return GetFixed(out); }
  Status GetU32(uint32_t* out) { return GetFixed(out); }
  Status GetU64(uint64_t* out) { return GetFixed(out); }
  Status GetI64(int64_t* out);
  Status GetBool(bool* out);
  Status GetVarint(uint64_t* out);
  Status GetBytes(Bytes* out);
  Status GetString(std::string* out);

  /// Number of unread bytes.
  size_t remaining() const { return size_ - pos_; }
  bool AtEnd() const { return pos_ == size_; }

 private:
  template <typename T>
  Status GetFixed(T* out) {
    if (remaining() < sizeof(T)) {
      return Status::Corruption("decoder underflow");
    }
    T v = 0;
    for (size_t i = 0; i < sizeof(T); ++i) {
      v |= static_cast<T>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += sizeof(T);
    *out = v;
    return Status::OK();
  }

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace blockplane

#endif  // BLOCKPLANE_COMMON_CODEC_H_
