// Measurement helpers used by the benchmark harness and tests: latency
// histograms with percentiles, simple counters, and time-series recorders
// for the failure-timeline experiments (Fig. 8).
#ifndef BLOCKPLANE_COMMON_METRICS_H_
#define BLOCKPLANE_COMMON_METRICS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace blockplane {

/// Collects double-valued samples (typically latencies in milliseconds) and
/// reports summary statistics.
class Histogram {
 public:
  void Add(double value);
  void Clear();

  size_t count() const { return samples_.size(); }
  double Mean() const;
  double Min() const;
  double Max() const;
  double Stddev() const;
  /// p in [0, 100]; nearest-rank on sorted samples.
  double Percentile(double p) const;
  double Median() const { return Percentile(50.0); }

  const std::vector<double>& samples() const { return samples_; }

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
  void EnsureSorted() const;
};

/// Ordered (x, y) series, e.g. (batch number, latency ms) for Fig. 8.
class TimeSeries {
 public:
  void Add(double x, double y) { points_.push_back({x, y}); }
  struct Point {
    double x;
    double y;
  };
  const std::vector<Point>& points() const { return points_; }
  void Clear() { points_.clear(); }

 private:
  std::vector<Point> points_;
};

/// Named counters, useful for asserting message complexity in tests
/// (e.g. "wide-area messages sent").
class CounterSet {
 public:
  void Increment(const std::string& name, int64_t delta = 1) {
    counters_[name] += delta;
  }
  int64_t Get(const std::string& name) const {
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
  }
  void Clear() { counters_.clear(); }
  const std::map<std::string, int64_t>& all() const { return counters_; }

 private:
  std::map<std::string, int64_t> counters_;
};

}  // namespace blockplane

#endif  // BLOCKPLANE_COMMON_METRICS_H_
