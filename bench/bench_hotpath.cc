// Measures the encode-once / verify-once / zero-copy hot path against the
// naive baselines it replaced, and writes the results to BENCH_hotpath.json.
//
// Three sections:
//
//   1. sign+verify microbenchmark — a frozen copy of the seed HMAC path
//      (key schedule rebuilt per call, 4 SHA-256 compressions for a short
//      message, byte-at-a-time Finish() padding) vs PrecomputedHmacKey
//      (cached ipad/opad midstates, 2 compressions, one-memcpy padding),
//      plus the cached-verify path on top. The frozen baseline is asserted
//      bit-identical before timing.
//   2. A PBFT commit workload (full Blockplane deployment, signatures and
//      digests ON) — reports the hot-path counters accumulated while
//      committing: sig_cache_hits, encodes_elided, bytes_copied_saved.
//   3. A lossy-network workload exercising the retransmission and
//      duplicate paths that share payload buffers.
//
// Deliberately not google-benchmark: the output contract here is a small,
// stable JSON document (speedup + counters) consumed by CI, not a
// statistics table.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/runner.h"
#include "core/deployment.h"
#include "crypto/hmac.h"
#include "crypto/signer.h"
#include "sim/simulator.h"

namespace blockplane {
namespace {

using Clock = std::chrono::steady_clock;

double Seconds(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

/// Compiler barrier: forces memory to be treated as modified, so the
/// sign and verify HMAC computations in one iteration cannot be merged by
/// common-subexpression elimination (the baseline path touches no globals,
/// making it otherwise CSE-able — which would halve its apparent cost and
/// wreck the comparison).
inline void ClobberMemory() { asm volatile("" ::: "memory"); }

// ---------------------------------------------------------------------------
// Frozen baseline: the seed's SHA-256 + HMAC, verbatim. The live tree's
// Sha256::Finish() now pads with one memset/memcpy and HmacSha256's ipad
// block streams straight into the compression function, so benchmarking the
// *current* reference would understate what this PR replaced. This copy
// keeps the seed's cost model measurable: key schedule rebuilt per call and
// byte-at-a-time Finish() padding (up to 55 single-byte Update() calls per
// digest, four digests per sign+verify round trip). Equivalence with the
// optimized path is asserted in main() before anything is timed.
// ---------------------------------------------------------------------------

constexpr uint32_t kSeedK[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

inline uint32_t SeedRotr(uint32_t x, int n) {
  return (x >> n) | (x << (32 - n));
}

class SeedSha256 {
 public:
  SeedSha256() { Reset(); }

  void Reset() {
    state_[0] = 0x6a09e667;
    state_[1] = 0xbb67ae85;
    state_[2] = 0x3c6ef372;
    state_[3] = 0xa54ff53a;
    state_[4] = 0x510e527f;
    state_[5] = 0x9b05688c;
    state_[6] = 0x1f83d9ab;
    state_[7] = 0x5be0cd19;
    total_len_ = 0;
    buffer_len_ = 0;
  }

  void Update(const uint8_t* data, size_t len) {
    total_len_ += len;
    while (len > 0) {
      if (buffer_len_ == 0 && len >= 64) {
        ProcessBlock(data);
        data += 64;
        len -= 64;
        continue;
      }
      size_t take = std::min(len, 64 - buffer_len_);
      std::memcpy(buffer_ + buffer_len_, data, take);
      buffer_len_ += take;
      data += take;
      len -= take;
      if (buffer_len_ == 64) {
        ProcessBlock(buffer_);
        buffer_len_ = 0;
      }
    }
  }

  crypto::Digest Finish() {
    uint64_t bit_len = total_len_ * 8;
    // Padding: 0x80, zeros, then the 64-bit big-endian length — fed one
    // byte at a time exactly as the seed did.
    uint8_t pad = 0x80;
    Update(&pad, 1);
    uint8_t zero = 0;
    while (buffer_len_ != 56) {
      Update(&zero, 1);
    }
    uint8_t len_bytes[8];
    for (int i = 0; i < 8; ++i) {
      len_bytes[i] = static_cast<uint8_t>(bit_len >> (56 - 8 * i));
    }
    std::memcpy(buffer_ + buffer_len_, len_bytes, 8);
    ProcessBlock(buffer_);
    buffer_len_ = 0;

    crypto::Digest out;
    for (int i = 0; i < 8; ++i) {
      out[i * 4] = static_cast<uint8_t>(state_[i] >> 24);
      out[i * 4 + 1] = static_cast<uint8_t>(state_[i] >> 16);
      out[i * 4 + 2] = static_cast<uint8_t>(state_[i] >> 8);
      out[i * 4 + 3] = static_cast<uint8_t>(state_[i]);
    }
    return out;
  }

 private:
  void ProcessBlock(const uint8_t block[64]) {
    uint32_t w[64];
    for (int i = 0; i < 16; ++i) {
      w[i] = (static_cast<uint32_t>(block[i * 4]) << 24) |
             (static_cast<uint32_t>(block[i * 4 + 1]) << 16) |
             (static_cast<uint32_t>(block[i * 4 + 2]) << 8) |
             static_cast<uint32_t>(block[i * 4 + 3]);
    }
    for (int i = 16; i < 64; ++i) {
      uint32_t s0 = SeedRotr(w[i - 15], 7) ^ SeedRotr(w[i - 15], 18) ^
                    (w[i - 15] >> 3);
      uint32_t s1 = SeedRotr(w[i - 2], 17) ^ SeedRotr(w[i - 2], 19) ^
                    (w[i - 2] >> 10);
      w[i] = w[i - 16] + s0 + w[i - 7] + s1;
    }
    uint32_t a = state_[0], b = state_[1], c = state_[2], d = state_[3];
    uint32_t e = state_[4], f = state_[5], g = state_[6], h = state_[7];
    for (int i = 0; i < 64; ++i) {
      uint32_t s1 = SeedRotr(e, 6) ^ SeedRotr(e, 11) ^ SeedRotr(e, 25);
      uint32_t ch = (e & f) ^ (~e & g);
      uint32_t temp1 = h + s1 + ch + kSeedK[i] + w[i];
      uint32_t s0 = SeedRotr(a, 2) ^ SeedRotr(a, 13) ^ SeedRotr(a, 22);
      uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
      uint32_t temp2 = s0 + maj;
      h = g;
      g = f;
      f = e;
      e = d + temp1;
      d = c;
      c = b;
      b = a;
      a = temp1 + temp2;
    }
    state_[0] += a;
    state_[1] += b;
    state_[2] += c;
    state_[3] += d;
    state_[4] += e;
    state_[5] += f;
    state_[6] += g;
    state_[7] += h;
  }

  uint32_t state_[8];
  uint64_t total_len_ = 0;
  uint8_t buffer_[64];
  size_t buffer_len_ = 0;
};

/// The seed's HmacSha256, verbatim: key block + ipad/opad schedule rebuilt
/// on every call, all four digests finalized with byte-at-a-time padding.
crypto::Digest SeedHmacSha256(const Bytes& key, const Bytes& msg) {
  constexpr size_t kBlock = 64;
  uint8_t key_block[kBlock] = {0};
  if (key.size() > kBlock) {
    crypto::Digest kd = crypto::Sha256Digest(key);
    std::memcpy(key_block, kd.data(), kd.size());
  } else {
    std::memcpy(key_block, key.data(), key.size());
  }

  uint8_t ipad[kBlock];
  uint8_t opad[kBlock];
  for (size_t i = 0; i < kBlock; ++i) {
    ipad[i] = key_block[i] ^ 0x36;
    opad[i] = key_block[i] ^ 0x5c;
  }

  SeedSha256 inner;
  inner.Update(ipad, kBlock);
  inner.Update(msg.data(), msg.size());
  crypto::Digest inner_digest = inner.Finish();

  SeedSha256 outer;
  outer.Update(opad, kBlock);
  outer.Update(inner_digest.data(), inner_digest.size());
  return outer.Finish();
}

/// One sign+verify round trip through the frozen seed path: the
/// pre-optimization cost model (key schedule rebuilt on both sides,
/// byte-at-a-time padding in every Finish()).
double NaiveSignVerifyOpsPerSec(const Bytes& key, const Bytes& msg,
                                int iters) {
  crypto::Digest sink{};
  auto start = Clock::now();
  for (int i = 0; i < iters; ++i) {
    crypto::Digest mac = SeedHmacSha256(key, msg);  // sign
    ClobberMemory();
    bool ok = SeedHmacSha256(key, msg) == mac;  // verify
    ClobberMemory();
    sink[0] ^= mac[0] ^ static_cast<uint8_t>(ok);
  }
  auto end = Clock::now();
  if (sink[0] == 0xEE) std::fprintf(stderr, "?");  // defeat DCE
  return iters / Seconds(start, end);
}

/// The same round trip through the midstate-cached key.
double PrecomputedSignVerifyOpsPerSec(const crypto::PrecomputedHmacKey& key,
                                      const Bytes& msg, int iters) {
  crypto::Digest sink{};
  auto start = Clock::now();
  for (int i = 0; i < iters; ++i) {
    crypto::Digest mac = key.Sign(msg);  // sign
    ClobberMemory();
    bool ok = key.Verify(msg, mac);  // verify
    ClobberMemory();
    sink[0] ^= mac[0] ^ static_cast<uint8_t>(ok);
  }
  auto end = Clock::now();
  if (sink[0] == 0xEE) std::fprintf(stderr, "?");
  return iters / Seconds(start, end);
}

/// Verify of an already-seen (signer, mac, msg) triple through the
/// KeyStore's verify-once cache.
double CachedVerifyOpsPerSec(int iters) {
  crypto::KeyStore keys;
  auto signer = keys.RegisterNode({0, 0});
  Bytes msg(48, 0x5b);
  crypto::Signature sig = signer->Sign(msg);
  bool first = keys.Verify(msg, sig);  // prime the cache
  auto start = Clock::now();
  bool ok = first;
  for (int i = 0; i < iters; ++i) ok &= keys.Verify(msg, sig);
  auto end = Clock::now();
  if (!ok) std::fprintf(stderr, "cached verify failed?!\n");
  return iters / Seconds(start, end);
}

struct WorkloadStats {
  uint64_t commits = 0;
  HotPathStats stats;
  double sim_wall_seconds = 0;
};

/// Commits `n` values through a full 4-node PBFT unit with signatures and
/// payload digests ON, and snapshots the hot-path counters it generated.
WorkloadStats RunPbftCommitWorkload(int n) {
  sim::Simulator simulator(1);
  core::BlockplaneOptions options;
  options.sign_messages = true;
  options.hash_payloads = true;
  options.checkpoint_interval = 32;
  core::Deployment deployment(&simulator, net::Topology::SingleSite(),
                              options);
  hotpath_stats().Reset();
  auto start = Clock::now();
  WorkloadStats out;
  for (int i = 0; i < n; ++i) {
    bool done = false;
    deployment.participant(0)->LogCommit(
        Bytes(256, static_cast<uint8_t>(i)), 0, [&](uint64_t) { done = true; });
    if (simulator.RunUntilCondition([&] { return done; },
                                    simulator.Now() + sim::Seconds(10))) {
      ++out.commits;
    }
  }
  auto end = Clock::now();
  out.stats = hotpath_stats();
  out.sim_wall_seconds = Seconds(start, end);
  hotpath_stats().Reset();
  return out;
}

/// Drives traffic over a deliberately lossy/duplicating network so the
/// transport's shared retransmission buffers and the network's shared
/// delivery closures do real work.
HotPathStats RunLossyTransmissionWorkload(int n) {
  sim::Simulator simulator(2);
  core::Deployment deployment(&simulator, net::Topology::Aws4(), {});
  // Loss/duplication rates match the tier-1 lossy sweep: high enough that
  // daemons retransmit and the network duplicates (both sharing payload
  // buffers), low enough that intra-site consensus stays live.
  deployment.network()->set_drop_prob(0.01);
  deployment.network()->set_duplicate_prob(0.02);
  hotpath_stats().Reset();
  int delivered = 0;
  deployment.participant(1)->SetReceiveHandler(
      [&](net::SiteId, const Bytes&) { ++delivered; });
  for (int i = 0; i < n; ++i) {
    deployment.participant(0)->Send(1, Bytes(512, static_cast<uint8_t>(i)), 0,
                                    nullptr);
  }
  simulator.RunUntilCondition([&] { return delivered >= n; },
                              sim::Seconds(300));
  HotPathStats stats = hotpath_stats();
  hotpath_stats().Reset();
  return stats;
}

/// SignBatch+VerifyBatch throughput through `runner` (DESIGN.md §12):
/// the --workers dimension. Returns sign+verify round trips per second
/// over a 64-message batch; the cache is disabled so every configuration
/// performs identical MAC work.
double BatchSignVerifyOpsPerSec(common::Runner* runner, int iters) {
  crypto::KeyStore keys;
  keys.set_verify_cache_capacity(0);
  auto signer = keys.RegisterNode({0, 0});
  constexpr size_t kBatch = 64;
  std::vector<crypto::SignJob> sign_jobs(kBatch);
  for (size_t i = 0; i < kBatch; ++i) {
    sign_jobs[i].msg = Bytes(48, static_cast<uint8_t>(i));
  }
  std::vector<crypto::VerifyJob> verify_jobs(kBatch);
  auto start = Clock::now();
  int rounds = std::max(1, iters / static_cast<int>(kBatch));
  bool ok = true;
  for (int round = 0; round < rounds; ++round) {
    signer->SignBatch(&sign_jobs, runner);
    for (size_t i = 0; i < kBatch; ++i) {
      verify_jobs[i].msg = sign_jobs[i].msg;
      verify_jobs[i].sig = sign_jobs[i].sig;
    }
    keys.VerifyBatch(&verify_jobs, runner);
    for (const auto& job : verify_jobs) ok &= job.ok;
  }
  auto end = Clock::now();
  if (!ok) std::fprintf(stderr, "batch verify failed?!\n");
  return rounds * static_cast<double>(kBatch) / Seconds(start, end);
}

void PutStats(std::ofstream& out, const HotPathStats& s,
              const char* indent) {
  out << indent << "\"sig_cache_hits\": " << s.sig_cache_hits << ",\n"
      << indent << "\"sig_cache_misses\": " << s.sig_cache_misses << ",\n"
      << indent << "\"encodes_elided\": " << s.encodes_elided << ",\n"
      << indent << "\"bytes_copied_saved\": " << s.bytes_copied_saved << ",\n"
      << indent << "\"hmac_precomputed_ops\": " << s.hmac_precomputed_ops
      << ",\n"
      << indent << "\"verify_cache_evictions\": " << s.verify_cache_evictions
      << "\n";
}

}  // namespace
}  // namespace blockplane

int main(int argc, char** argv) {
  using namespace blockplane;

  int sweep_workers = 4;
  std::string out_path = "BENCH_hotpath.json";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--workers=", 0) == 0) {
      char* end = nullptr;
      const long v = std::strtol(arg.c_str() + 10, &end, 10);
      if (end == arg.c_str() + 10 || *end != '\0' || v < 1) {
        std::fprintf(stderr, "--workers needs a positive integer, got \"%s\"\n",
                     arg.c_str() + 10);
        return 2;
      }
      sweep_workers = static_cast<int>(v);
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else {
      std::fprintf(stderr, "usage: %s [--workers=N] [--out=PATH]\n", argv[0]);
      return 2;
    }
  }

  // --- 1. sign+verify throughput --------------------------------------------
  Bytes key(32, 0x42);  // deployment keys are 32-byte digests (signer.cc)
  Bytes msg(48, 0xa7);  // a canonical PBFT vote body is 49 bytes
  crypto::PrecomputedHmacKey fast_key(key);
  // The frozen baseline must agree bit-for-bit with both the live reference
  // and the optimized key, or the comparison is meaningless.
  if (SeedHmacSha256(key, msg) != crypto::HmacSha256(key, msg) ||
      SeedHmacSha256(key, msg) != fast_key.Sign(msg)) {
    std::fprintf(stderr, "baseline/optimized HMAC mismatch — bench invalid\n");
    return 1;
  }
  constexpr int kIters = 100000;
  // Warm-up, then interleaved best-of-N: taking each side's best trial
  // cancels transient machine noise (scheduler preemption, frequency
  // scaling) that would otherwise skew a single back-to-back comparison.
  NaiveSignVerifyOpsPerSec(key, msg, kIters / 10);
  PrecomputedSignVerifyOpsPerSec(fast_key, msg, kIters / 10);
  double naive = 0;
  double fast = 0;
  for (int trial = 0; trial < 5; ++trial) {
    naive = std::max(naive, NaiveSignVerifyOpsPerSec(key, msg, kIters));
    fast = std::max(fast,
                    PrecomputedSignVerifyOpsPerSec(fast_key, msg, kIters));
  }
  double cached = CachedVerifyOpsPerSec(kIters);
  double speedup = fast / naive;

  std::printf("sign+verify (48-byte msg):\n");
  std::printf("  naive reference   : %12.0f ops/s\n", naive);
  std::printf("  precomputed key   : %12.0f ops/s  (%.2fx)\n", fast, speedup);
  std::printf("  cached verify     : %12.0f verifies/s\n", cached);

  // --- 2. PBFT commit workload ----------------------------------------------
  WorkloadStats pbft = RunPbftCommitWorkload(200);
  std::printf("pbft commit workload (%llu commits, crypto ON):\n",
              static_cast<unsigned long long>(pbft.commits));
  std::printf("  sig_cache_hits=%lld misses=%lld encodes_elided=%lld\n",
              static_cast<long long>(pbft.stats.sig_cache_hits),
              static_cast<long long>(pbft.stats.sig_cache_misses),
              static_cast<long long>(pbft.stats.encodes_elided));
  std::printf("  bytes_copied_saved=%lld hmac_precomputed_ops=%lld\n",
              static_cast<long long>(pbft.stats.bytes_copied_saved),
              static_cast<long long>(pbft.stats.hmac_precomputed_ops));

  // --- 3. lossy-network workload --------------------------------------------
  HotPathStats lossy = RunLossyTransmissionWorkload(20);
  std::printf("lossy transmission workload:\n");
  std::printf("  bytes_copied_saved=%lld (shared retransmit/dup buffers)\n",
              static_cast<long long>(lossy.bytes_copied_saved));

  // --- 4. batched crypto through the Runner seam (--workers dimension) ------
  double batch_inline;
  double batch_threaded;
  {
    common::InlineRunner inline_runner;
    batch_inline = BatchSignVerifyOpsPerSec(&inline_runner, kIters / 10);
    common::ThreadPoolRunner pool(
        {sweep_workers, /*queue_capacity=*/256, /*spin=*/false});
    batch_threaded = BatchSignVerifyOpsPerSec(&pool, kIters / 10);
  }
  const double batch_speedup = batch_threaded / batch_inline;
  const double batch_efficiency = batch_speedup / sweep_workers;
  const unsigned cores = std::thread::hardware_concurrency();
  std::printf("batched sign+verify (workers=%d, %u hardware threads):\n",
              sweep_workers, cores);
  std::printf("  inline            : %12.0f ops/s\n", batch_inline);
  std::printf("  threadpool        : %12.0f ops/s  (%.2fx, %.2f/worker)\n",
              batch_threaded, batch_speedup, batch_efficiency);

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot open --out path \"%s\"\n", out_path.c_str());
    return 2;
  }
  out << "{\n"
      << "  \"sign_verify\": {\n"
      << "    \"message_bytes\": " << msg.size() << ",\n"
      << "    \"naive_ops_per_sec\": " << naive << ",\n"
      << "    \"precomputed_ops_per_sec\": " << fast << ",\n"
      << "    \"cached_verify_ops_per_sec\": " << cached << ",\n"
      << "    \"speedup\": " << speedup << "\n"
      << "  },\n"
      << "  \"pbft_commit_workload\": {\n"
      << "    \"commits\": " << pbft.commits << ",\n"
      << "    \"wall_seconds\": " << pbft.sim_wall_seconds << ",\n";
  PutStats(out, pbft.stats, "    ");
  out << "  },\n"
      << "  \"lossy_transmission_workload\": {\n";
  PutStats(out, lossy, "    ");
  out << "  },\n"
      << "  \"batch_sign_verify\": {\n"
      << "    \"workers\": " << sweep_workers << ",\n"
      << "    \"hardware_concurrency\": " << cores << ",\n"
      << "    \"inline_ops_per_sec\": " << batch_inline << ",\n"
      << "    \"threadpool_ops_per_sec\": " << batch_threaded << ",\n"
      << "    \"speedup_vs_inline\": " << batch_speedup << ",\n"
      << "    \"efficiency_per_worker\": " << batch_efficiency << "\n"
      << "  }\n"
      << "}\n";
  out.close();
  std::printf("wrote %s\n", out_path.c_str());

  bool ok = speedup >= 2.0 && pbft.stats.sig_cache_hits > 0 &&
            pbft.stats.encodes_elided > 0;
  if (!ok) {
    std::fprintf(stderr,
                 "hot-path acceptance NOT met: speedup=%.2f hits=%lld "
                 "elided=%lld\n",
                 speedup, static_cast<long long>(pbft.stats.sig_cache_hits),
                 static_cast<long long>(pbft.stats.encodes_elided));
    return 1;
  }
  return 0;
}
